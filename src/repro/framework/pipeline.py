"""The end-to-end optimization process of Figure 2.

1. start with the user-defined initial plan;
2. identify optimizable blocks;
3. generate all possible SEs;
4. generate the candidate statistics sets;
5. determine the minimal-cost set of statistics to observe;
6. instrument the plan and run it, gathering the statistics;
7. cost alternative plans and pick the best for future runs.

:class:`StatisticsPipeline` wires the pieces together; one call to
:meth:`StatisticsPipeline.run_once` performs steps 1-7 and returns the
chosen plans plus everything observed along the way.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.algebra.blocks import BlockAnalysis, analyze, with_plans
from repro.algebra.operators import Workflow
from repro.algebra.plans import PlanTree
from repro.core.costs import CostModel
from repro.core.css import CssCatalog
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.greedy import solve_greedy
from repro.core.ilp import solve_ilp
from repro.core.selection import SelectionResult, build_problem
from repro.core.statistics import Statistic, StatisticsStore
from repro.engine.backend import BackendExecutor, WorkflowRun, get_backend
from repro.engine.compile import PlanCache
from repro.engine.scheduler import RetryPolicy, RunFailure
from repro.engine.table import Table
from repro.estimation.estimator import CardinalityEstimator
from repro.estimation.optimizer import OptimizedPlan, PlanOptimizer


@dataclass
class PipelineReport:
    """Everything one observe-and-optimize cycle produced.

    A degraded cycle (some block permanently failed) still reports plans
    for every block: ``failures`` holds the structured per-task failure
    records, ``degraded`` maps each affected block to the statistics
    source that substituted for tonight's observations (with the per-SE
    detail in ``degraded_sources``), and each plan's ``confidence``
    annotates how trustworthy its cost estimates are.

    When a shared :class:`~repro.catalog.store.StatisticsCatalog` backs
    the cycle, ``tapped`` lists the statistics actually instrumented
    tonight (catalog-covered ones are consumed at zero cost instead of
    being re-observed — ``catalog_hits`` counts them) and ``drift`` holds
    the reconciliation report.

    A traced cycle (``run_once(tracer=...)``) carries the tracer in
    ``trace``: ``trace.root`` is the span tree covering enumeration,
    selection, every executed block with its operator points, catalog
    reconciliation and re-optimization, so tests and benchmarks assert
    on spans instead of scraping stdout.  ``trace`` is ``None`` for an
    untraced run.
    """

    analysis: BlockAnalysis
    catalog: CssCatalog
    selection: SelectionResult
    run: WorkflowRun
    estimator: CardinalityEstimator
    plans: dict[str, OptimizedPlan]
    timings: dict[str, float] = field(default_factory=dict)
    failures: dict[str, RunFailure] = field(default_factory=dict)
    degraded: dict[str, str] = field(default_factory=dict)
    degraded_sources: dict[str, dict[str, str]] = field(default_factory=dict)
    tapped: list[Statistic] = field(default_factory=list)
    catalog_hits: int = 0
    drift: "object | None" = None  # DriftReport when a catalog was given
    trace: "object | None" = None  # Tracer when run_once(tracer=...) was given
    #: catalog entries invalidated because their source's schema drifted
    drift_invalidated: int = 0
    #: the catalog server vanished and the client answered from its local
    #: view -- every plan's confidence was demoted one rung
    catalog_degraded: bool = False
    #: catalog endpoints the HA client failed over between this cycle
    #: (0 for a single-endpoint client or an uneventful night)
    catalog_failovers: int = 0
    #: this cycle's plan-compilation cache activity (deltas, not totals)
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_invalidations: int = 0
    #: distinct-tap implementation this cycle ran with ("exact" | "hll")
    sketch_mode: str = "exact"
    #: bytes of distinct-accumulator state the taps held (for a sharded
    #: run: what the shard workers actually shipped to the parent)
    sketch_bytes: int = 0
    #: catalog cardinality entries the feedback corrector fixed in place
    corrections: int = 0
    #: FeedbackReport when run_once(feedback=...) was given
    feedback: "object | None" = None

    @property
    def ok(self) -> bool:
        return not self.failures

    # -- data quality (populated when run_once(contracts=...) was given) ----
    @property
    def quarantined(self) -> dict[str, Table]:
        """Per-source dead-letter tables of rows the contracts rejected."""
        return self.run.quarantined

    @property
    def violations(self) -> list:
        """Structured per-row :class:`~repro.quality.quarantine.Violation`s."""
        return self.run.violations

    @property
    def schema_drift(self) -> tuple:
        """:class:`~repro.quality.drift.SchemaDriftEvent`s the gate resolved."""
        return self.run.schema_drift

    @property
    def rows_quarantined(self) -> int:
        return self.run.rows_quarantined

    # -- sharded execution (populated by the multiprocess backend) ----------
    @property
    def shard_stats(self) -> dict:
        """Shard/task/retry counters from a sharded run (else empty)."""
        return self.run.shard_stats

    @property
    def chosen_trees(self) -> dict[str, PlanTree]:
        return {name: plan.tree for name, plan in self.plans.items()}

    @property
    def plan_confidence(self) -> dict[str, str]:
        return {name: plan.confidence for name, plan in self.plans.items()}

    @property
    def total_estimated_cost(self) -> float:
        # unoptimizable (confidence "none") plans carry NaN costs; they are
        # excluded so a degraded night still reports the healthy total
        return sum(
            p.cost for p in self.plans.values() if not math.isnan(p.cost)
        )

    @property
    def total_initial_cost(self) -> float:
        return sum(
            p.initial_cost
            for p in self.plans.values()
            if not math.isnan(p.initial_cost)
        )

    def describe(self) -> str:
        lines = [
            f"observed {len(self.selection.observed_indexes)} statistics "
            f"(cost {self.selection.total_cost:g}, "
            f"method {self.selection.method})",
            f"plan cost: initial {self.total_initial_cost:g} -> "
            f"optimized {self.total_estimated_cost:g}",
        ]
        if self.catalog_hits:
            lines.append(
                f"catalog: {self.catalog_hits} statistics reused at zero "
                f"cost, {len(self.tapped)} observed fresh"
            )
        if self.catalog_degraded:
            lines.append(
                "catalog server unavailable: ran from the local view, "
                "plan confidence demoted one rung"
            )
        if self.sketch_mode != "exact":
            lines.append(
                f"distinct taps: {self.sketch_mode} sketches "
                f"({self.sketch_bytes} accumulator byte(s))"
            )
        if self.feedback is not None and getattr(self.feedback, "observed", 0):
            lines.append(self.feedback.describe())
        if self.drift is not None and getattr(self.drift, "touched", 0) + len(
            getattr(self.drift, "drifted", ())
        ):
            lines.append(self.drift.describe())
        if self.rows_quarantined or self.schema_drift:
            by_source: dict[str, int] = {}
            for name, table in self.quarantined.items():
                by_source[name] = table.num_rows
            detail = ", ".join(
                f"{name}: {count}" for name, count in sorted(by_source.items())
            )
            lines.append(
                f"quarantined {self.rows_quarantined} row(s) "
                f"({len(self.violations)} violation(s)"
                + (f"; {detail}" if detail else "")
                + ")"
            )
            for event in self.schema_drift:
                lines.append(f"   drift: {event.describe()}")
            if self.drift_invalidated:
                lines.append(
                    f"   {self.drift_invalidated} catalog entr"
                    f"{'y' if self.drift_invalidated == 1 else 'ies'} "
                    "invalidated by schema drift"
                )
        for name, plan in self.plans.items():
            marker = "*" if plan.improved else " "
            note = "" if plan.confidence == "observed" else f" [{plan.confidence}]"
            lines.append(
                f" {marker} {name}: {plan.tree!r} (cost {plan.cost:g}){note}"
            )
        if self.run.resumed:
            lines.append(f"resumed from checkpoint: {', '.join(self.run.resumed)}")
        for failure in self.failures.values():
            lines.append(f" ! {failure.describe()}")
        return "\n".join(lines)


@dataclass
class StatisticsPipeline:
    """Configurable Figure-2 pipeline for a single workflow."""

    workflow: Workflow
    generator_options: GeneratorOptions = field(default_factory=GeneratorOptions)
    solver: str = "ilp"  # "ilp" | "greedy"
    executor: str = "columnar"  # deprecated alias for ``backend``
    cost_metric: str = "cout"
    free_statistics: set[Statistic] = field(default_factory=set)
    memory_weight: float = 1.0
    cpu_weight: float = 0.0
    backend: str = "columnar"  # any name get_backend() resolves
    workers: int = 1  # > 1 executes independent blocks concurrently
    #: row shards per block for the multiprocess backend (None = that
    #: backend's own default); ignored by single-process backends
    shards: int | None = None
    #: plan compilation: True/False force it on/off, None defers to the
    #: process default (``REPRO_COMPILE``, on unless disabled)
    compile: bool | None = None
    #: distinct-tap implementation: "exact" (set union) or "hll"
    #: (mergeable HyperLogLog sketches through the accumulator factory)
    distinct_sketch: str = "exact"
    #: HLL precision p (2^p registers); None = the sketch default
    sketch_precision: int | None = None
    #: monotonic clock behind ``PipelineReport.timings`` (and the default
    #: span clock) -- injectable so tests assert exact, deterministic
    #: durations instead of sleeping
    clock: Callable[[], float] = time.perf_counter

    def __post_init__(self) -> None:
        if self.executor != "columnar" and self.backend == "columnar":
            self.backend = self.executor
        if self.shards is not None and self.backend != "multiprocess":
            # asking for row shards selects the sharded backend (keeps the
            # cost-model constants and metric labels consistent)
            self.backend = "multiprocess"
        from repro.estimation.sketches import SketchSpec

        kwargs = {"mode": self.distinct_sketch}
        if self.sketch_precision is not None:
            kwargs["precision"] = self.sketch_precision
        # SketchError is a ValueError: a bad mode/precision fails fast here
        self.sketch_spec = SketchSpec(**kwargs)
        self.analysis = analyze(self.workflow)
        self.catalog = generate_css(self.analysis, self.generator_options)
        self._se_sizes: dict = {}
        # shared across run_once calls: warm cycles skip plan lowering,
        # and plan changes/schema drift key/evict entries as needed
        self.plan_cache = PlanCache()
        # the multiprocess backend is held across cycles so its worker
        # pool (and the per-process compiled-plan caches) stay warm
        self._backend_instance = None

    def _make_backend(self):
        """Resolve the configured backend; sharded backends are cached so
        their worker pool survives across cycles."""
        if self.backend == "multiprocess" or self.shards is not None:
            if self._backend_instance is None:
                from repro.engine.dist import MultiprocessBackend

                kwargs = {}
                if self.shards is not None:
                    kwargs["shards"] = self.shards
                self._backend_instance = MultiprocessBackend(**kwargs)
            return self._backend_instance
        return get_backend(self.backend)

    def close(self) -> None:
        """Release backend resources (the multiprocess worker pool)."""
        backend, self._backend_instance = self._backend_instance, None
        if backend is not None:
            backend.close()

    # -- steps 4-5 ---------------------------------------------------------
    def cost_model(self) -> CostModel:
        return CostModel(
            self.workflow.catalog,
            se_sizes=dict(self._se_sizes),
            memory_weight=self.memory_weight,
            cpu_weight=self.cpu_weight,
            # a sketched distinct tap never exceeds its register count
            distinct_sketch_units=(
                float(self.sketch_spec.registers)
                if self.sketch_spec.mode == "hll"
                else None
            ),
        )

    def select_statistics(self) -> SelectionResult:
        problem = build_problem(
            self.catalog, self.cost_model(), free_statistics=self.free_statistics
        )
        if self.solver == "greedy":
            return solve_greedy(problem)
        return solve_ilp(problem)

    # -- steps 6-7 ---------------------------------------------------------
    def run_once(
        self,
        sources: dict[str, Table],
        trees: dict[str, PlanTree] | None = None,
        *,
        faults=None,
        retry: RetryPolicy | None = None,
        checkpoint=None,
        prior_statistics: StatisticsStore | None = None,
        prior_observed_at: float | None = None,
        stats_catalog=None,
        run_id: str = "",
        drift_threshold: float | None = None,
        tracer=None,
        metrics=None,
        contracts=None,
        on_drift: str | None = None,
        quarantine=None,
        feedback=None,
    ) -> PipelineReport:
        """One full observe-and-optimize cycle.

        ``trees`` overrides the executed plans (defaults to the initial
        plan on the first cycle, or whatever the previous cycle chose).
        Because observability is a property of the *executed* plan, the
        whole identification stage (SEs -> CSSs -> selection) is re-derived
        against the overridden plans, exactly as the paper's cycle repeats
        from the currently-best plan.

        Resilience knobs (all optional): ``faults`` injects a
        :class:`~repro.engine.faults.FaultPlan`, ``retry`` sets the
        scheduler's :class:`~repro.engine.scheduler.RetryPolicy`,
        ``checkpoint`` journals/restores per-block progress
        (:class:`~repro.framework.recovery.RunCheckpoint`), and
        ``prior_statistics`` is a previous run's store used to backfill
        the cardinalities of any block that permanently fails tonight
        (falling back to the independence baseline, then to pinning the
        block's current plan).  With a degraded run the cycle still
        completes: healthy blocks get exactly the plans a fault-free run
        would choose, affected blocks are annotated in ``degraded``.

        ``stats_catalog`` is a shared
        :class:`~repro.catalog.store.StatisticsCatalog`: its usable
        entries join the selection problem at zero cost (the Section 6.2
        mechanism), are *not* re-instrumented tonight, and back the
        estimator directly.  After the run the catalog is reconciled --
        fresh observations refresh it, drifted entries are penalized and
        marked stale -- and saved if it has a backing file.
        ``prior_observed_at`` (e.g. the mtime of a ``--prior-stats``
        file) lets the degraded fallback prefer the fresher of the prior
        store and the catalog.

        ``tracer`` (a :class:`~repro.obs.trace.Tracer`) records the whole
        cycle as a span tree -- enumeration, selection, one span per
        executed block with per-operator points (estimated-vs-actual rows
        where a prior prediction exists), catalog reconcile, optimization
        -- surfaced as ``PipelineReport.trace``.  ``metrics`` (a
        :class:`~repro.obs.metrics.MetricsRegistry`) receives the
        standard run series via
        :func:`~repro.obs.record.record_run_metrics`.  Both default to
        off and cost nothing when off.

        ``contracts`` (a :class:`~repro.quality.contracts.ContractSet`)
        arms the data-quality gate: each contracted source is first
        reconciled against schema drift under the ``on_drift`` policy
        (``strict`` | ``coerce`` | ``ignore-extra``, default ``coerce``),
        then validated row by row; invalid rows are diverted to a
        dead-letter table *before* any block executes, so every tap and
        ground-truth count this cycle observes excludes them.  Sources
        whose schema drifted have their catalog entries invalidated
        (``drift_invalidated``) and, in a degraded night, their catalog
        rung demoted to prior-level trust.  ``quarantine`` (a
        :class:`~repro.quality.quarantine.QuarantineStore`) collects the
        dead letters across calls for later persistence.

        ``feedback`` (a :class:`~repro.catalog.feedback
        .FeedbackCorrector`) closes the adaptive loop: after the run it
        consumes the estimated-vs-actual SE sizes (the same stream the
        trace layer annotates as ``estimation_rel_error``), corrects
        drifted catalog cardinality entries in place and remembers
        per-statistic errors for fleet re-ranking.  Its report lands in
        ``PipelineReport.feedback`` / ``corrections``.
        """
        from repro.obs.trace import as_tracer

        if tracer is not None and not tracer.enabled:
            tracer = None
        tr = as_tracer(tracer)
        timings: dict[str, float] = {}
        clock = self.clock

        if isinstance(stats_catalog, str):
            # "http://host:port" / "unix:///path.sock" -> served catalog
            # behind the degrading client; a plain path -> the file store
            from repro.serve.client import resolve_stats_catalog

            stats_catalog = resolve_stats_catalog(stats_catalog)
        # an HA client counts endpoint failovers; capture the baseline so
        # the report carries this cycle's delta, not the client's lifetime
        failovers_before = getattr(stats_catalog, "failovers", 0)
        cache_before = (
            self.plan_cache.hits,
            self.plan_cache.misses,
            self.plan_cache.invalidations,
        )

        quality = None
        if contracts is not None and len(contracts):
            from repro.quality.drift import DEFAULT_POLICY
            from repro.quality.gate import QualityGate
            from repro.quality.quarantine import QuarantineStore

            quality = QualityGate(
                contracts=contracts,
                policy=on_drift or DEFAULT_POLICY,
                quarantine=quarantine
                if quarantine is not None
                else QuarantineStore(),
            )

        t0 = clock()
        with tr.span("enumerate") as enum_span:
            if trees:
                analysis = with_plans(self.analysis, trees)
                catalog = generate_css(analysis, self.generator_options)
            else:
                analysis, catalog = self.analysis, self.catalog
            if tracer is not None:
                counts = catalog.counts()
                enum_span.annotate(
                    blocks=len(analysis.blocks),
                    statistics=counts["statistics"],
                    css=counts["css"],
                    required=counts["required"],
                )
        timings["enumerate"] = clock() - t0

        t0 = clock()
        signer = None
        hits = None
        free = set(self.free_statistics)
        with tr.span("selection") as sel_span:
            if stats_catalog is not None:
                from repro.catalog.signatures import WorkflowSigner

                signer = WorkflowSigner(analysis)
                hits = stats_catalog.lookup(signer, catalog.all_statistics)
                free |= hits.free
            problem = build_problem(
                catalog, self.cost_model(), free_statistics=free
            )
            selection = (
                solve_greedy(problem)
                if self.solver == "greedy"
                else solve_ilp(problem)
            )
            # catalog-covered statistics are consumed, never re-observed:
            # they are dropped from the instrumented set, which is where the
            # fleet-wide observation savings materialize
            tapped = [
                stat
                for stat in selection.observed
                if hits is None or stat not in hits.free
            ]
            sel_span.annotate(
                method=selection.method,
                observed=len(selection.observed_indexes),
                cost=selection.total_cost,
                tapped=len(tapped),
                catalog_hits=len(selection.observed) - len(tapped),
            )
        timings["selection"] = clock() - t0

        # prior row predictions, for estimated-vs-actual trace annotations:
        # the previous cycle's materialized sizes, overlaid with tonight's
        # catalog cardinalities (both are what the optimizer believed)
        estimates = None
        if tracer is not None or feedback is not None:
            estimates = dict(self._se_sizes)
            if hits is not None:
                estimates.update(
                    {
                        stat.se: float(value)
                        for stat, value in hits.values.items()
                        if stat.is_cardinality
                    }
                )

        t0 = clock()
        from repro.estimation.sketches import sketch_scope

        backend = self._make_backend()
        # the scope covers tap construction, execution and the parent-side
        # shard merges, so every accumulator the cycle builds (including
        # TapSet.merge's factory-fresh ones) follows the same spec
        with sketch_scope(self.sketch_spec):
            taps = backend.make_taps(tapped)
            with tr.span("execution", backend=self.backend,
                         workers=self.workers) as exec_span:
                run = BackendExecutor(
                    analysis,
                    backend,
                    workers=self.workers,
                    compile_plans=self.compile,
                    plan_cache=self.plan_cache,
                ).run(
                    sources,
                    taps=taps,
                    faults=faults,
                    retry=retry,
                    checkpoint=checkpoint,
                    tracer=tracer,
                    trace_parent=exec_span if tracer is not None else None,
                    estimates=estimates,
                    quality=quality,
                )
                exec_span.annotate(
                    failures=len(run.failures), resumed=len(run.resumed)
                )
                if quality is not None:
                    exec_span.annotate(
                        quarantined=run.rows_quarantined,
                        schema_drift=len(run.schema_drift),
                    )
        timings["execution"] = clock() - t0
        sketch_bytes = 0
        if self.sketch_spec.mode != "exact":
            sketch_bytes = getattr(taps, "distinct_bytes", lambda: 0)()
            sketch_bytes += run.shard_stats.get("sketch_bytes", 0)
        self._se_sizes = dict(run.se_sizes)  # feeds next cycle's CPU costs

        drifted_sources = {event.source for event in run.schema_drift}
        drift = None
        drift_invalidated = 0
        if stats_catalog is not None:
            from repro.catalog.drift import invalidate_schema_drift, reconcile_run

            t0 = clock()
            kwargs = {} if drift_threshold is None else {
                "threshold": drift_threshold
            }
            with tr.span("reconcile") as rec_span:
                # schema drift first: entries observed against the old shape
                # go stale *before* tonight's (post-reconcile) observations
                # re-admit whatever the run could still validate
                if drifted_sources:
                    drift_invalidated = invalidate_schema_drift(
                        stats_catalog,
                        signer,
                        analysis,
                        drifted_sources,
                        metrics=metrics,
                        workflow=analysis.workflow.name,
                    )
                # a resumed run's journal-restored statistics were observed
                # on the *crashed* attempt: refreshing their entries now
                # would forge tonight's timestamp onto stale provenance
                fresh_tapped = [
                    stat
                    for stat in tapped
                    if stat not in run.restored_statistics
                ]
                drift = reconcile_run(
                    stats_catalog,
                    signer,
                    run.observations,
                    run.se_sizes,
                    fresh_tapped,
                    workflow=analysis.workflow.name,
                    run_id=run_id,
                    backend=self.backend,
                    metrics=metrics,
                    **kwargs,
                )
                rec_span.annotate(
                    added=len(drift.added),
                    refreshed=len(drift.refreshed),
                    drifted=len(drift.drifted),
                    stale_marked=drift.stale_marked,
                    max_rel_error=drift.max_rel_error,
                    schema_invalidated=drift_invalidated,
                )
            timings["reconcile"] = clock() - t0

        feedback_report = None
        if feedback is not None:
            if signer is None:
                from repro.catalog.signatures import WorkflowSigner

                signer = WorkflowSigner(analysis)
            t0 = clock()
            with tr.span("feedback") as fb_span:
                feedback_report = feedback.observe_run(
                    signer,
                    estimates or {},
                    run.se_sizes,
                    workflow=analysis.workflow.name,
                    run_id=run_id,
                    backend=self.backend,
                    metrics=metrics,
                )
                fb_span.annotate(
                    observed=feedback_report.observed,
                    corrected=len(feedback_report.corrected),
                    flagged=len(feedback_report.flagged),
                    mean_rel_error=feedback_report.mean_rel_error,
                )
            timings["feedback"] = clock() - t0

        # saved after the corrector ran, so in-place corrections persist
        # in the same night's write
        if stats_catalog is not None and stats_catalog.path is not None:
            stats_catalog.save()

        t0 = clock()
        opt_span = tr.start("optimization")
        effective = run.observations
        if hits is not None and len(hits.values):
            effective = run.observations.copy()
            effective.merge(hits.values)
        estimator = CardinalityEstimator(catalog, effective)
        degraded: dict[str, str] = {}
        degraded_sources: dict[str, dict[str, str]] = {}
        if run.failures:
            from repro.framework.recovery import degraded_cardinalities

            observed_only = (
                CardinalityEstimator(catalog, run.observations)
                if hits is not None and len(hits.values)
                else estimator
            )
            prefer_prior = (
                prior_observed_at is not None
                and hits is not None
                and prior_observed_at > hits.newest_observed_at
            )
            cards, degraded, degraded_sources = degraded_cardinalities(
                analysis,
                run,
                catalog,
                observed_only,
                prior=prior_statistics,
                catalog_statistics=hits.values if hits is not None else None,
                prefer_prior=prefer_prior,
                drifted_sources=drifted_sources,
            )
            optimizer = PlanOptimizer(analysis, cards, metric=self.cost_metric)
            plans = {
                block.name: optimizer.optimize_or_fallback(
                    block, confidence=degraded.get(block.name, "observed")
                )
                for block in analysis.blocks
            }
            # optimize_or_fallback may further downgrade a block to "none"
            for name, plan in plans.items():
                if plan.confidence != "observed":
                    degraded[name] = plan.confidence
        else:
            plans = PlanOptimizer(
                analysis, estimator.all_cardinalities(), metric=self.cost_metric
            ).optimize()
        catalog_degraded = bool(getattr(stats_catalog, "degraded", False))
        if catalog_degraded:
            # the server vanished mid-night: the chosen trees are exactly
            # what the local view would have chosen, but they could not be
            # cross-checked against the fleet's shared state -- every
            # plan's confidence drops one rung, and the run still succeeds
            from dataclasses import replace as _replace

            from repro.framework.recovery import demote_confidence

            for name, plan in plans.items():
                demoted = demote_confidence(plan.confidence)
                if demoted != plan.confidence:
                    plans[name] = _replace(plan, confidence=demoted)
                    degraded[name] = demoted

        tr.end(
            opt_span,
            improved=sum(1 for p in plans.values() if p.improved),
            degraded=len(degraded),
        )
        timings["optimization"] = clock() - t0

        report = PipelineReport(
            analysis=analysis,
            catalog=catalog,
            selection=selection,
            run=run,
            estimator=estimator,
            plans=plans,
            timings=timings,
            failures=dict(run.failures),
            degraded=degraded,
            degraded_sources=degraded_sources,
            tapped=tapped,
            catalog_hits=len(selection.observed) - len(tapped),
            drift=drift,
            drift_invalidated=drift_invalidated,
            trace=tracer,
            catalog_degraded=catalog_degraded,
            catalog_failovers=(
                getattr(stats_catalog, "failovers", 0) - failovers_before
            ),
            plan_cache_hits=self.plan_cache.hits - cache_before[0],
            plan_cache_misses=self.plan_cache.misses - cache_before[1],
            plan_cache_invalidations=self.plan_cache.invalidations
            - cache_before[2],
            sketch_mode=self.sketch_spec.mode,
            sketch_bytes=sketch_bytes,
            corrections=(
                len(feedback_report.corrected)
                if feedback_report is not None
                else 0
            ),
            feedback=feedback_report,
        )
        if tracer is not None:
            tracer.finish(
                workflow=analysis.workflow.name,
                run_id=run_id,
                backend=self.backend,
                workers=self.workers,
                ok=report.ok,
            )
        if metrics is not None:
            from repro.obs.record import record_run_metrics

            record_run_metrics(
                metrics,
                report,
                workflow=analysis.workflow.name,
                backend=self.backend,
            )
        return report
