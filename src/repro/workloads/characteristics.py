"""Data-characteristics reporting: the summary table of Section 7.

The paper reports, over the synthetic relations backing its 30 workflows::

    Stat     Card     UV
    Max      417874   417874
    Min      3342     102
    Mean     104466   65768
    Median   52234    6529

``summarize`` computes the same four rows for any (cardinality, unique
values) population; ``paper_reference`` returns the published numbers for
side-by-side reporting; ``suite_characteristics`` profiles the actual
tables of our workflow suite at a given scale.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from repro.workloads.datagen import zipf_sizes


@dataclass(frozen=True)
class SummaryRow:
    """One row of the Max/Min/Mean/Median summary table."""

    stat: str
    card: float
    uv: float


PAPER_REFERENCE: list[SummaryRow] = [
    SummaryRow("Max", 417874, 417874),
    SummaryRow("Min", 3342, 102),
    SummaryRow("Mean", 104466, 65768),
    SummaryRow("Median", 52234, 6529),
]


def paper_reference() -> list[SummaryRow]:
    """The published data-characteristics table."""
    return list(PAPER_REFERENCE)


def summarize(cards: list[float], uvs: list[float]) -> list[SummaryRow]:
    """Max / Min / Mean / Median over the two populations (paper's table)."""
    if not cards or not uvs:
        raise ValueError("empty population")
    return [
        SummaryRow("Max", max(cards), max(uvs)),
        SummaryRow("Min", min(cards), min(uvs)),
        SummaryRow("Mean", statistics.fmean(cards), statistics.fmean(uvs)),
        SummaryRow("Median", statistics.median(cards), statistics.median(uvs)),
    ]


def synthetic_population(
    n_relations: int = 60, seed: int = 7
) -> tuple[list[int], list[int]]:
    """Zipfian (cardinality, unique-values) populations in the paper's range.

    Cardinalities follow a rank-size Zipf between the paper's min and max;
    unique values are a per-relation Zipfian fraction of the cardinality
    (heavily skewed, reproducing UV-median << UV-mean).
    """
    rng = random.Random(seed)
    cards = zipf_sizes(
        n_relations, max_size=417874, min_size=3342, skew=0.85, rng=rng
    )
    uvs: list[int] = []
    for card in cards:
        # fraction ~ 1/k^1.1 over 50 steps: most relations have few UVs,
        # a handful are nearly unique -- the paper's UV profile
        rank = rng.randint(1, 50)
        frac = 1.0 / (rank**1.1)
        uvs.append(max(102, min(card, int(card * frac))))
    # the largest relation keys on a serial PK: fully unique, which is why
    # the paper's UV maximum equals its cardinality maximum (417,874)
    biggest = max(range(len(cards)), key=lambda i: cards[i])
    uvs[biggest] = cards[biggest]
    return cards, uvs


def format_table(rows: list[SummaryRow]) -> str:
    """Plain-text rendering of the summary table."""
    lines = [f"{'Stat':<8}{'Card':>12}{'UV':>12}"]
    for row in rows:
        lines.append(f"{row.stat:<8}{row.card:>12.0f}{row.uv:>12.0f}")
    return "\n".join(lines)
