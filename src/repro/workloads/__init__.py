"""Synthetic workloads: data generation and the 30-workflow suite."""

from repro.workloads.characteristics import (
    SummaryRow,
    paper_reference,
    summarize,
    synthetic_population,
)
from repro.workloads.datagen import ColumnSpec, TableSpec, ZipfSampler, generate_tables
from repro.workloads.randomgen import random_workflow
from repro.workloads.tpcdi import WorkflowCase, case, suite

__all__ = [
    "case", "ColumnSpec", "generate_tables", "paper_reference",
    "random_workflow", "suite", "summarize", "SummaryRow",
    "synthetic_population", "TableSpec", "WorkflowCase", "ZipfSampler",
]
