"""The 30-workflow benchmark suite, motivated by the TPC-DI draft.

Section 7: *"The set of workflows used for the experiments were a
representative set of 30 workflows, motivated from a draft version of
TPC-DI ... the ETLs range from simple linear ETLs having only one
execution plan to complex ETLs having 8-way joins and many
transformations."*

The suite is built over a brokerage/data-integration schema (customers,
accounts, brokers, securities, companies, trades, holdings, market
history...) and spans the same complexity range:

- workflows 1-6: linear single-plan flows (some with blocking UDFs);
- 7-10: two/three-way joins, one with a materialized reject link;
- 11-16: star joins of 3-5 inputs with filters and FK lookups;
- 17-20: flows with aggregation boundaries and cross-block joins;
- 21: the flagship 8-way join with multiple transformations (the paper's
  workflow 21, lower bound 41 executions for pay-as-you-go);
- 22-26: block-boundary patterns: UDF-derived join keys (Figure 3),
  materialized rejects, shared intermediates, multi-target flows;
- 27-29: 5-7-way joins with cyclic join graphs;
- 30: a 6-way join block (the paper's workflow 30, lower bound 14).

Everything is deterministic: ``suite()`` rebuilds the same workflows and
``case.tables(scale, seed)`` the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.algebra.operators import (
    Aggregate,
    AggregateUDF,
    Filter,
    Join,
    Materialize,
    Node,
    Predicate,
    Project,
    Source,
    Target,
    Transform,
    UdfSpec,
    Workflow,
)
from repro.algebra.schema import Catalog
from repro.engine.table import Table
from repro.workloads.datagen import TableSpec, generate_tables

# ---------------------------------------------------------------------------
# the shared schema
# ---------------------------------------------------------------------------

#: relation -> ({attribute: domain size}, unit cardinality, {serial attrs})
RELATIONS: dict[str, tuple[dict[str, int], int, set[str]]] = {
    "DimDate": ({"date_id": 365, "month_id": 12, "year_id": 5}, 365, {"date_id"}),
    "StatusType": ({"status_id": 6, "status_code": 6}, 6, {"status_id"}),
    "TradeType": ({"type_id": 8, "type_code": 8}, 8, {"type_id"}),
    "TaxRate": ({"tax_id": 50, "rate_bucket": 20}, 50, {"tax_id"}),
    "DimBroker": ({"broker_id": 120, "branch_id": 40}, 120, {"broker_id"}),
    "DimCompany": ({"company_id": 300, "industry_id": 25}, 300, {"company_id"}),
    "DimSecurity": (
        {"security_id": 600, "company_id": 300, "exchange_id": 8},
        600,
        {"security_id"},
    ),
    "DimCustomer": (
        {"customer_id": 1000, "tier": 10, "tax_id": 50, "region_id": 30},
        1000,
        {"customer_id"},
    ),
    "DimAccount": (
        {"account_id": 1500, "customer_id": 1000, "broker_id": 120, "status_id": 6},
        1500,
        {"account_id"},
    ),
    "Trade": (
        {
            "trade_id": 5000,
            "account_id": 1500,
            "security_id": 600,
            "date_id": 365,
            "type_id": 8,
            "qty_bucket": 100,
        },
        5000,
        {"trade_id"},
    ),
    "CashTxn": (
        {"txn_id": 4000, "account_id": 1500, "date_id": 365, "amount_bucket": 50},
        4000,
        {"txn_id"},
    ),
    "Holding": (
        {
            "holding_id": 4500,
            "account_id": 1500,
            "security_id": 600,
            "date_id": 365,
            "qty_bucket": 100,
        },
        4500,
        {"holding_id"},
    ),
    "Watch": (
        {"watch_id": 2500, "customer_id": 1000, "security_id": 600, "date_id": 365},
        2500,
        {"watch_id"},
    ),
    "MarketHist": (
        {"mh_id": 6000, "security_id": 600, "date_id": 365, "price_bucket": 80},
        6000,
        {"mh_id"},
    ),
    "Prospect": ({"prospect_id": 800, "region_id": 30, "tier": 10}, 800, {"prospect_id"}),
    "HRRecord": ({"employee_id": 200, "broker_id": 120, "branch_id": 40}, 200, {"employee_id"}),
    "FinStatement": (
        {"fin_id": 900, "company_id": 300, "date_id": 365, "revenue_bucket": 60},
        900,
        {"fin_id"},
    ),
}

#: facts scale with the scale factor; dimensions keep their key coverage
SCALED_RELATIONS = {
    "Trade",
    "CashTxn",
    "Holding",
    "Watch",
    "MarketHist",
    "FinStatement",
    "Prospect",
    "HRRecord",
}

FOREIGN_KEYS: list[tuple[str, str, str]] = [
    ("Trade", "DimAccount", "account_id"),
    ("Trade", "DimSecurity", "security_id"),
    ("Trade", "DimDate", "date_id"),
    ("Trade", "TradeType", "type_id"),
    ("DimAccount", "DimCustomer", "customer_id"),
    ("DimAccount", "DimBroker", "broker_id"),
    ("DimAccount", "StatusType", "status_id"),
    ("DimSecurity", "DimCompany", "company_id"),
    ("DimCustomer", "TaxRate", "tax_id"),
    ("CashTxn", "DimAccount", "account_id"),
    ("CashTxn", "DimDate", "date_id"),
    ("Holding", "DimAccount", "account_id"),
    ("Holding", "DimSecurity", "security_id"),
    ("Holding", "DimDate", "date_id"),
    ("Watch", "DimCustomer", "customer_id"),
    ("Watch", "DimSecurity", "security_id"),
    ("Watch", "DimDate", "date_id"),
    ("MarketHist", "DimSecurity", "security_id"),
    ("MarketHist", "DimDate", "date_id"),
    ("FinStatement", "DimCompany", "company_id"),
    ("HRRecord", "DimBroker", "broker_id"),
]

# derived attributes minted by UDFs in some workflows
DERIVED_ATTRS: dict[str, int] = {
    "position_key": 1500,
    "segment_id": 30,
    "risk_bucket": 20,
    "fiscal_id": 60,
}


def build_catalog(relations: list[str]) -> Catalog:
    """A catalog covering the given relations plus derived attributes."""
    catalog = Catalog()
    for name in relations:
        attrs, _card, _serial = RELATIONS[name]
        catalog.add_relation(name, attrs)
    for attr, domain in DERIVED_ATTRS.items():
        catalog.add_attribute(attr, domain)
    for child, parent, attr in FOREIGN_KEYS:
        if child in catalog.relations and parent in catalog.relations:
            catalog.add_foreign_key(child, parent, attr)
    return catalog


# ---------------------------------------------------------------------------
# predicates and UDFs shared across the suite (deterministic semantics)
# ---------------------------------------------------------------------------

P_RECENT = Predicate("recent", lambda v: v > 180)
P_ACTIVE = Predicate("active", lambda v: v <= 3)
P_TOP_TIER = Predicate("top_tier", lambda v: v <= 4)
P_BIG_QTY = Predicate("big_qty", lambda v: v > 40)
P_EVEN = Predicate("even", lambda v: v % 2 == 0)
P_LOW_RATE = Predicate("low_rate", lambda v: v <= 12)
P_MAJOR = Predicate("major", lambda v: v <= 15)
P_FIRST_HALF = Predicate("first_half", lambda v: v <= 182)

U_NORMALIZE = UdfSpec("normalize", lambda v: ((v * 7) % 97) + 1)
U_SEGMENT = UdfSpec("segment", lambda v: (v % 30) + 1)
U_RISK = UdfSpec("risk", lambda vs: ((vs[0] + vs[1]) % 20) + 1)
U_POSITION = UdfSpec("position", lambda vs: ((vs[0] * 31 + vs[1]) % 1500) + 1)
U_FISCAL = UdfSpec("fiscal", lambda v: ((v - 1) // 7) + 1)


def _dedupe_rows(rows: list[dict]) -> list[dict]:
    """Blocking dedupe UDF: keeps the first row per full-tuple value."""
    seen: set[tuple] = set()
    out = []
    for row in rows:
        key = tuple(sorted(row.items()))
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out


# ---------------------------------------------------------------------------
# case plumbing
# ---------------------------------------------------------------------------


@dataclass
class WorkflowCase:
    """One member of the suite: a buildable workflow plus its data recipe."""

    number: int
    name: str
    description: str
    relations: list[str]
    builder: Callable[[Catalog, dict[str, Source]], list[Target]]

    def build(self) -> Workflow:
        catalog = build_catalog(self.relations)
        sources = {name: Source(catalog, name) for name in self.relations}
        targets = self.builder(catalog, sources)
        return Workflow(f"wf{self.number:02d}_{self.name}", catalog, targets)

    def table_specs(self, scale: float = 1.0) -> dict[str, TableSpec]:
        specs: dict[str, TableSpec] = {}
        for name in self.relations:
            attrs, unit_card, serial = RELATIONS[name]
            card = unit_card
            if name in SCALED_RELATIONS:
                card = max(int(unit_card * scale), 8)
            spec = TableSpec(name, card)
            for attr, domain in attrs.items():
                spec.column(attr, domain, skew=1.1, serial=attr in serial)
            specs[name] = spec
        return specs

    def tables(self, scale: float = 1.0, seed: int = 0) -> dict[str, Table]:
        return generate_tables(self.table_specs(scale), seed=seed)

    def characteristics(
        self, scale: float = 1.0
    ) -> tuple[dict[str, float], dict[str, dict[str, float]]]:
        """(cardinalities, per-attribute distinct counts) without data.

        This is the paper's experimental mode -- "note that we don't need
        the actual data": enough to drive the cost model and the selection
        experiments at any scale.
        """
        cards: dict[str, float] = {}
        distinct: dict[str, dict[str, float]] = {}
        for name in self.relations:
            attrs, unit_card, _serial = RELATIONS[name]
            card = float(unit_card)
            if name in SCALED_RELATIONS:
                card = max(unit_card * scale, 8.0)
            cards[name] = card
            distinct[name] = {a: min(float(d), card) for a, d in attrs.items()}
        return cards, distinct


_CASES: list[WorkflowCase] = []


def _case(number: int, name: str, description: str, relations: list[str]):
    def decorate(fn):
        _CASES.append(WorkflowCase(number, name, description, relations, fn))
        return fn

    return decorate


# ---------------------------------------------------------------------------
# workflows 1-6: linear flows
# ---------------------------------------------------------------------------


@_case(1, "load_dimdate", "linear: filter + fiscal transform", ["DimDate"])
def _wf1(catalog, s):
    flow = Filter(s["DimDate"], "date_id", P_FIRST_HALF)
    flow = Transform(flow, "month_id", U_FISCAL, output_attr="fiscal_id")
    return [Target(flow, "dim_date")]


@_case(2, "load_status", "linear: projection only", ["StatusType"])
def _wf2(catalog, s):
    return [Target(Project(s["StatusType"], ("status_id",)), "status")]


@_case(3, "load_taxrate", "linear: filter + normalize", ["TaxRate"])
def _wf3(catalog, s):
    flow = Filter(s["TaxRate"], "rate_bucket", P_LOW_RATE)
    flow = Transform(flow, "rate_bucket", U_NORMALIZE)
    return [Target(flow, "tax_rate")]


@_case(4, "load_prospect", "linear: segment derivation + tier filter", ["Prospect"])
def _wf4(catalog, s):
    flow = Transform(s["Prospect"], "region_id", U_SEGMENT, output_attr="segment_id")
    flow = Filter(flow, "tier", P_TOP_TIER)
    return [Target(flow, "prospect")]


@_case(5, "load_hr", "linear with a blocking dedupe UDF", ["HRRecord"])
def _wf5(catalog, s):
    flow = Filter(s["HRRecord"], "branch_id", P_EVEN)
    flow = AggregateUDF(flow, "dedupe", _dedupe_rows)
    return [Target(flow, "hr")]


@_case(6, "load_finstatement", "linear: recent statements, normalized", ["FinStatement"])
def _wf6(catalog, s):
    flow = Filter(s["FinStatement"], "date_id", P_RECENT)
    flow = Transform(flow, "revenue_bucket", U_NORMALIZE)
    flow = Project(flow, ("fin_id", "company_id", "date_id", "revenue_bucket"))
    return [Target(flow, "fin")]


# ---------------------------------------------------------------------------
# workflows 7-10: small joins
# ---------------------------------------------------------------------------


@_case(7, "customer_accounts", "pinned 2-way join with materialized reject",
       ["DimCustomer", "DimAccount"])
def _wf7(catalog, s):
    join = Join(s["DimAccount"], s["DimCustomer"], "customer_id", reject_left=True)
    return [Target(join, "customer_accounts")]


@_case(8, "security_company", "2-way join + industry filter", ["DimSecurity", "DimCompany"])
def _wf8(catalog, s):
    comp = Filter(s["DimCompany"], "industry_id", P_MAJOR)
    return [Target(Join(s["DimSecurity"], comp, "company_id"), "sec_comp")]


@_case(9, "broker_accounts", "3-way: accounts x brokers x status",
       ["DimAccount", "DimBroker", "StatusType"])
def _wf9(catalog, s):
    j = Join(s["DimAccount"], s["DimBroker"], "broker_id")
    j = Join(j, s["StatusType"], "status_id")
    return [Target(j, "broker_accounts")]


@_case(10, "watch_enrich", "3-way: watches x securities x customers",
       ["Watch", "DimSecurity", "DimCustomer"])
def _wf10(catalog, s):
    j = Join(s["Watch"], s["DimSecurity"], "security_id")
    j = Join(j, Filter(s["DimCustomer"], "tier", P_TOP_TIER), "customer_id")
    return [Target(j, "watch_enrich")]


# ---------------------------------------------------------------------------
# workflows 11-16: star joins
# ---------------------------------------------------------------------------


@_case(11, "trade_star4", "4-way star around Trade",
       ["Trade", "DimAccount", "DimSecurity", "DimDate"])
def _wf11(catalog, s):
    j = Join(s["Trade"], s["DimAccount"], "account_id")
    j = Join(j, s["DimSecurity"], "security_id")
    j = Join(j, Filter(s["DimDate"], "date_id", P_RECENT), "date_id")
    return [Target(j, "trade_star")]


@_case(12, "cash_chain", "3-way chain: cash -> accounts -> customers",
       ["CashTxn", "DimAccount", "DimCustomer"])
def _wf12(catalog, s):
    j = Join(s["CashTxn"], s["DimAccount"], "account_id")
    j = Join(j, s["DimCustomer"], "customer_id")
    return [Target(j, "cash_chain")]


@_case(13, "holding_star5", "5-way star with qty filter",
       ["Holding", "DimAccount", "DimSecurity", "DimDate", "StatusType"])
def _wf13(catalog, s):
    j = Join(Filter(s["Holding"], "qty_bucket", P_BIG_QTY), s["DimAccount"], "account_id")
    j = Join(j, s["DimSecurity"], "security_id")
    j = Join(j, s["DimDate"], "date_id")
    j = Join(j, s["StatusType"], "status_id")
    return [Target(j, "holding_star")]


@_case(14, "trade_typed5", "5-way: trades with type, account, customer, date",
       ["Trade", "TradeType", "DimAccount", "DimCustomer", "DimDate"])
def _wf14(catalog, s):
    j = Join(s["Trade"], s["TradeType"], "type_id")
    j = Join(j, s["DimAccount"], "account_id")
    j = Join(j, s["DimCustomer"], "customer_id")
    j = Join(j, s["DimDate"], "date_id")
    return [Target(j, "trade_typed")]


@_case(15, "market_company", "4-way: market history to companies",
       ["MarketHist", "DimSecurity", "DimCompany", "DimDate"])
def _wf15(catalog, s):
    j = Join(s["MarketHist"], s["DimSecurity"], "security_id")
    j = Join(j, s["DimCompany"], "company_id")
    j = Join(j, Filter(s["DimDate"], "date_id", P_FIRST_HALF), "date_id")
    return [Target(j, "market_company")]


@_case(16, "customer_tax_region", "4-way with wide join domains",
       ["DimCustomer", "TaxRate", "Prospect", "DimAccount"])
def _wf16(catalog, s):
    j = Join(s["DimCustomer"], s["TaxRate"], "tax_id")
    j = Join(j, s["Prospect"], "region_id")
    j = Join(j, s["DimAccount"], "customer_id")
    return [Target(j, "customer_tax")]


# ---------------------------------------------------------------------------
# workflows 17-20: aggregation boundaries and cross-block flows
# ---------------------------------------------------------------------------


@_case(17, "trade_agg_report", "4-way join, then aggregate, then lookup",
       ["Trade", "DimAccount", "DimDate", "DimCustomer", "TaxRate"])
def _wf17(catalog, s):
    j = Join(s["Trade"], s["DimAccount"], "account_id")
    j = Join(j, s["DimDate"], "date_id")
    j = Join(j, s["DimCustomer"], "customer_id")
    agg = Aggregate(j, ("customer_id", "tax_id"), {"n_trades": ("count", "trade_id")})
    out = Join(agg, s["TaxRate"], "tax_id")
    return [Target(out, "trade_agg")]


@_case(18, "watch_segments", "join, aggregate by region, join prospects",
       ["Watch", "DimCustomer", "Prospect"])
def _wf18(catalog, s):
    j = Join(s["Watch"], s["DimCustomer"], "customer_id")
    agg = Aggregate(j, ("region_id",), {"n_watches": ("count", "watch_id")})
    out = Join(agg, s["Prospect"], "region_id")
    return [Target(out, "watch_segments")]


@_case(19, "holdings_chain6", "6-way chain/star mix",
       ["Holding", "DimAccount", "DimCustomer", "TaxRate", "DimSecurity", "DimCompany"])
def _wf19(catalog, s):
    j = Join(s["Holding"], s["DimAccount"], "account_id")
    j = Join(j, s["DimCustomer"], "customer_id")
    j = Join(j, s["TaxRate"], "tax_id")
    j = Join(j, s["DimSecurity"], "security_id")
    j = Join(j, s["DimCompany"], "company_id")
    return [Target(j, "holdings_chain")]


@_case(20, "fin_cyclic", "4-way cyclic: statements, companies, securities, market",
       ["FinStatement", "DimCompany", "DimSecurity", "MarketHist"])
def _wf20(catalog, s):
    j = Join(s["FinStatement"], s["DimCompany"], "company_id")
    j = Join(j, s["DimSecurity"], "company_id")
    j = Join(j, s["MarketHist"], "security_id")
    return [Target(j, "fin_cyclic")]


# ---------------------------------------------------------------------------
# workflow 21: the flagship 8-way join
# ---------------------------------------------------------------------------


@_case(21, "grand_trade_report", "8-way join with multiple transformations",
       ["Trade", "TradeType", "DimAccount", "DimCustomer", "DimBroker",
        "DimSecurity", "DimCompany", "DimDate"])
def _wf21(catalog, s):
    trades = Transform(s["Trade"], "qty_bucket", U_NORMALIZE)
    j = Join(trades, s["TradeType"], "type_id")
    j = Join(j, s["DimAccount"], "account_id")
    j = Join(j, s["DimCustomer"], "customer_id")
    j = Join(j, s["DimBroker"], "broker_id")
    j = Join(j, s["DimSecurity"], "security_id")
    j = Join(j, s["DimCompany"], "company_id")
    j = Join(j, s["DimDate"], "date_id")
    j = Transform(j, "tier", U_SEGMENT, output_attr="segment_id")
    return [Target(j, "grand_trade_report")]


# ---------------------------------------------------------------------------
# workflows 22-26: block-boundary patterns
# ---------------------------------------------------------------------------


@_case(22, "trade_position", "UDF-derived join key seals a block (Figure 3)",
       ["Trade", "DimAccount", "Holding"])
def _wf22(catalog, s):
    j = Join(s["Trade"], s["DimAccount"], "account_id")
    keyed = Transform(j, ("account_id", "security_id"), U_POSITION,
                      output_attr="position_key")
    holdings = Transform(s["Holding"], ("account_id", "security_id"), U_POSITION,
                         output_attr="position_key")
    out = Join(keyed, holdings, "position_key")
    return [Target(out, "trade_position")]


@_case(23, "account_quarantine", "materialized reject feeding a 3-way block",
       ["DimAccount", "DimCustomer", "DimBroker", "StatusType"])
def _wf23(catalog, s):
    pinned = Join(s["DimAccount"], s["DimCustomer"], "customer_id",
                  reject_left=True)
    j = Join(pinned, s["DimBroker"], "broker_id")
    j = Join(j, s["StatusType"], "status_id")
    return [Target(j, "account_quarantine")]


@_case(24, "customer_segmentation", "transform + blocking UDF + downstream join",
       ["DimCustomer", "Prospect", "DimAccount"])
def _wf24(catalog, s):
    enriched = Join(s["DimCustomer"], s["Prospect"], "region_id")
    shrunk = AggregateUDF(enriched, "dedupe", _dedupe_rows)
    out = Join(shrunk, s["DimAccount"], "customer_id")
    return [Target(out, "customer_segmentation")]


@_case(25, "multi_target", "shared intermediate feeding two targets",
       ["Trade", "DimAccount", "DimDate", "DimSecurity"])
def _wf25(catalog, s):
    base = Join(s["Trade"], s["DimAccount"], "account_id")
    left = Join(base, s["DimDate"], "date_id")
    right = Join(base, s["DimSecurity"], "security_id")
    return [Target(left, "trades_by_date"), Target(right, "trades_by_security")]


@_case(26, "broker_performance", "5-way join then aggregation",
       ["HRRecord", "DimBroker", "DimAccount", "Trade", "DimDate"])
def _wf26(catalog, s):
    j = Join(s["HRRecord"], s["DimBroker"], "broker_id")
    j = Join(j, s["DimAccount"], "broker_id")
    j = Join(j, s["Trade"], "account_id")
    j = Join(j, s["DimDate"], "date_id")
    agg = Aggregate(j, ("broker_id",), {"n_trades": ("count", "trade_id")})
    return [Target(agg, "broker_performance")]


# ---------------------------------------------------------------------------
# workflows 27-30: larger joins
# ---------------------------------------------------------------------------


@_case(27, "security_activity", "5-way cyclic around securities",
       ["Watch", "Trade", "DimSecurity", "DimCustomer", "DimAccount"])
def _wf27(catalog, s):
    j = Join(s["Watch"], s["DimSecurity"], "security_id")
    j = Join(j, s["Trade"], "security_id")
    j = Join(j, s["DimAccount"], "account_id")
    j = Join(j, s["DimCustomer"], "customer_id")
    return [Target(j, "security_activity")]


@_case(28, "cash_customer6", "6-way with filters on several inputs",
       ["CashTxn", "DimAccount", "DimCustomer", "TaxRate", "DimBroker", "DimDate"])
def _wf28(catalog, s):
    j = Join(Filter(s["CashTxn"], "amount_bucket", P_EVEN), s["DimAccount"], "account_id")
    j = Join(j, Filter(s["DimCustomer"], "tier", P_TOP_TIER), "customer_id")
    j = Join(j, s["TaxRate"], "tax_id")
    j = Join(j, s["DimBroker"], "broker_id")
    j = Join(j, s["DimDate"], "date_id")
    return [Target(j, "cash_customer")]


@_case(29, "trade_lifecycle7", "7-way join",
       ["Trade", "TradeType", "DimAccount", "DimCustomer", "DimSecurity",
        "DimCompany", "DimDate"])
def _wf29(catalog, s):
    j = Join(s["Trade"], s["TradeType"], "type_id")
    j = Join(j, s["DimAccount"], "account_id")
    j = Join(j, s["DimCustomer"], "customer_id")
    j = Join(j, s["DimSecurity"], "security_id")
    j = Join(j, s["DimCompany"], "company_id")
    j = Join(j, s["DimDate"], "date_id")
    return [Target(j, "trade_lifecycle")]


@_case(30, "portfolio_rollup6", "6-way join block then aggregate",
       ["Holding", "DimAccount", "DimCustomer", "DimSecurity", "DimCompany", "DimDate"])
def _wf30(catalog, s):
    j = Join(s["Holding"], s["DimAccount"], "account_id")
    j = Join(j, s["DimCustomer"], "customer_id")
    j = Join(j, s["DimSecurity"], "security_id")
    j = Join(j, s["DimCompany"], "company_id")
    j = Join(j, s["DimDate"], "date_id")
    agg = Aggregate(j, ("customer_id", "company_id"),
                    {"total_qty": ("sum", "qty_bucket")})
    return [Target(agg, "portfolio_rollup")]


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def suite() -> list[WorkflowCase]:
    """The 30 workflow cases, ordered by number."""
    return sorted(_CASES, key=lambda c: c.number)


def case(number: int) -> WorkflowCase:
    """Look up one suite member by its workflow number (1-30)."""
    for c in _CASES:
        if c.number == number:
            return c
    raise KeyError(f"no workflow case {number}")
