"""Synthetic data generation: Zipfian tables for the benchmark suite.

Section 7: *"The data characteristics of the input relations like table
cardinalities, unique values of an attribute ... are synthetically
generated ... from Zipfian distribution with a high skew."*

Value columns are sampled from a Zipf(s) distribution over the attribute's
domain, with the rank-to-value mapping shuffled per (seed, relation, attr)
so the skew does not always hit the same ids.  Everything is seeded and
deterministic.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from itertools import accumulate

from repro.engine.table import Table


@dataclass(frozen=True)
class ColumnSpec:
    """One attribute: its domain size and Zipf skew.

    ``serial=True`` makes the column a shuffled enumeration of the domain
    (a primary key): with cardinality == domain every value appears exactly
    once, which is what makes foreign-key joins true lookups.
    """

    domain: int
    skew: float = 1.1
    serial: bool = False


@dataclass
class TableSpec:
    """Recipe for one synthetic relation."""

    name: str
    cardinality: int
    columns: dict[str, ColumnSpec] = field(default_factory=dict)

    def column(
        self, attr: str, domain: int, skew: float = 1.1, serial: bool = False
    ) -> "TableSpec":
        self.columns[attr] = ColumnSpec(domain, skew, serial)
        return self


class ZipfSampler:
    """Samples ranks 1..domain with P(k) proportional to 1/k^s."""

    def __init__(self, domain: int, skew: float, rng: random.Random):
        if domain <= 0:
            raise ValueError("domain must be positive")
        self.domain = domain
        weights = [1.0 / (k**skew) for k in range(1, domain + 1)]
        self._cum = list(accumulate(weights))
        self._total = self._cum[-1]
        self._rng = rng
        # shuffle the rank -> value mapping so skew lands on random ids
        self._values = list(range(1, domain + 1))
        rng.shuffle(self._values)

    def sample(self) -> int:
        u = self._rng.random() * self._total
        rank = bisect_left(self._cum, u)
        return self._values[min(rank, self.domain - 1)]

    def sample_many(self, n: int) -> list[int]:
        return [self.sample() for _ in range(n)]


def generate_table(spec: TableSpec, seed: int = 0) -> Table:
    """Materialize one relation from its spec (deterministic per seed)."""
    columns: dict[str, list] = {}
    for attr, col in spec.columns.items():
        # string seeds hash deterministically across processes (unlike
        # tuple hashes, which PYTHONHASHSEED randomizes)
        rng = random.Random(f"{seed}/{spec.name}/{attr}")
        if col.serial:
            values = list(range(1, col.domain + 1))
            rng.shuffle(values)
            # cycle if the table is larger than the key domain
            columns[attr] = [
                values[i % col.domain] for i in range(spec.cardinality)
            ]
        else:
            sampler = ZipfSampler(col.domain, col.skew, rng)
            columns[attr] = sampler.sample_many(spec.cardinality)
    return Table(columns)


def generate_tables(
    specs: dict[str, TableSpec] | list[TableSpec], seed: int = 0
) -> dict[str, Table]:
    """Materialize a set of relations, keyed by name."""
    if isinstance(specs, dict):
        specs = list(specs.values())
    return {spec.name: generate_table(spec, seed) for spec in specs}


def zipf_sizes(
    n: int,
    max_size: int,
    min_size: int,
    skew: float,
    rng: random.Random,
) -> list[int]:
    """Rank-size Zipfian cardinalities in [min_size, max_size].

    Used to draw the per-relation cardinalities of the benchmark suite so
    their summary statistics resemble the paper's data-characteristics
    table (strong right skew: mean well above median, min << max).
    """
    if n <= 0:
        return []
    raw = [max_size / (k**skew) for k in range(1, n + 1)]
    sizes = [max(min_size, int(round(v))) for v in raw]
    rng.shuffle(sizes)
    return sizes
