"""Seeded random-workflow generation for fuzzing and property tests.

:func:`random_workflow` builds a random but *valid* workflow -- a random
join graph over 2..5 relations with chain-ish attribute sharing (which
guarantees joinability), sprinkled with filters, transforms, projections,
reject links and aggregations -- plus matching random source tables.  The
same seed always produces the same workflow and the same data, which is
what makes the downstream suites reproducible:

- the end-to-end fuzz suite (``tests/test_fuzz_workflows.py``) checks the
  paper's exactness guarantee over many seeds;
- the property suite (``tests/proptest/``) checks per-CSS composition and
  solver-coverage invariants on the same generator;
- the differential backend fuzz runs one seed's workflow on every
  execution backend and demands identical results.

Workflows are intentionally small (5..60 rows per source) so a property
run over dozens of seeds stays fast; the *shapes* (join arity, operator
mix, reject links) are what the invariants quantify over.
"""

from __future__ import annotations

import random

from repro.algebra.operators import (
    Aggregate,
    Filter,
    Join,
    Predicate,
    Project,
    Source,
    Target,
    Transform,
    UdfSpec,
    Workflow,
)
from repro.algebra.schema import Catalog
from repro.engine.table import Table

#: attribute pool shared by every generated relation; domains 6..21
ATTR_POOL = {f"a{i}": 6 + 3 * i for i in range(6)}


def random_workflow(seed: int) -> tuple[Workflow, dict[str, Table]]:
    """A random but valid workflow plus matching random tables."""
    rng = random.Random(seed)
    n_rels = rng.randint(2, 5)
    catalog = Catalog()
    attrs_of: dict[str, list[str]] = {}
    attr_names = list(ATTR_POOL)

    # chain-ish attribute sharing guarantees joinability
    for i in range(n_rels):
        name = f"R{i}"
        shared_prev = attr_names[i % len(attr_names)]
        shared_next = attr_names[(i + 1) % len(attr_names)]
        extra = rng.sample(attr_names, rng.randint(0, 2))
        attrs = sorted({shared_prev, shared_next, *extra})
        catalog.add_relation(name, {a: ATTR_POOL[a] for a in attrs})
        attrs_of[name] = attrs

    nodes = {}
    for name in attrs_of:
        node = Source(catalog, name)
        # random pre-join filter / transform
        if rng.random() < 0.4:
            attr = rng.choice(attrs_of[name])
            threshold = rng.randint(2, ATTR_POOL[attr])
            node = Filter(
                node,
                attr,
                Predicate(f"lt{threshold}", lambda v, t=threshold: v <= t),
            )
        if rng.random() < 0.25:
            attr = rng.choice(attrs_of[name])
            node = Transform(
                node, attr, UdfSpec("wrap", lambda v: (v * 3) % 23 + 1)
            )
        if rng.random() < 0.2 and len(node.output_attrs()) > 2:
            keep = rng.sample(node.output_attrs(), len(node.output_attrs()) - 1)
            node = Project(node, tuple(sorted(keep)))
        nodes[name] = node

    # join everything up, respecting shared attributes
    order = list(attrs_of)
    rng.shuffle(order)
    current = nodes[order[0]]
    current_attrs = set(current.output_attrs())
    joined = [order[0]]
    remaining = order[1:]
    while remaining:
        progressed = False
        for name in list(remaining):
            shared = sorted(current_attrs & set(nodes[name].output_attrs()))
            if not shared:
                continue
            attr = rng.choice(shared)
            reject = rng.random() < 0.15
            current = Join(current, nodes[name], attr, reject_left=reject)
            current_attrs |= set(nodes[name].output_attrs())
            joined.append(name)
            remaining.remove(name)
            progressed = True
            break
        if not progressed:
            # no shared attribute: drop the unjoinable relations
            break

    if rng.random() < 0.2 and len(current.output_attrs()) >= 2:
        group = tuple(sorted(rng.sample(current.output_attrs(), 1)))
        current = Aggregate(current, group, {"n": ("count", group[0])})
    workflow = Workflow(f"fuzz{seed}", catalog, [Target(current, "out")])

    tables = {}
    for name in joined:
        n_rows = rng.randint(5, 60)
        tables[name] = Table(
            {
                a: [rng.randint(1, ATTR_POOL[a]) for _ in range(n_rows)]
                for a in attrs_of[name]
            }
        )
    # unjoined relations may still be workflow sources if they were dropped
    for name in attrs_of:
        tables.setdefault(
            name,
            Table(
                {
                    a: [rng.randint(1, ATTR_POOL[a]) for _ in range(5)]
                    for a in attrs_of[name]
                }
            ),
        )
    return workflow, tables


__all__ = ["ATTR_POOL", "random_workflow"]
