"""What-if plan analysis: rank every alternative under learned statistics.

The framework's guarantee is that *any* re-ordering can be costed.  This
module makes that tangible: enumerate a block's plan space, cost every tree
with the learned cardinalities, and report the ranking -- where the initial
plan sits, how much the optimum saves, and how bad the worst choice would
have been (the risk the designer was carrying).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.blocks import Block, BlockAnalysis
from repro.algebra.expressions import AnySE
from repro.algebra.plans import PlanTree, tree_splits
from repro.estimation.costmodel import PlanCostModel

#: enumeration guard for very large plan spaces (8-way cliques)
MAX_PLANS = 4096


@dataclass(frozen=True)
class RankedPlan:
    """One plan with its estimated cost and rank (1 = best)."""

    rank: int
    cost: float
    tree: PlanTree
    is_initial: bool


@dataclass
class PlanRanking:
    """The full cost ranking of a block's plan space."""

    block: Block
    plans: list[RankedPlan]
    truncated: bool = False

    @property
    def best(self) -> RankedPlan:
        return self.plans[0]

    @property
    def worst(self) -> RankedPlan:
        return self.plans[-1]

    @property
    def initial(self) -> RankedPlan:
        for plan in self.plans:
            if plan.is_initial:
                return plan
        raise LookupError("initial plan not in the ranking")  # pragma: no cover

    @property
    def initial_rank(self) -> int:
        return self.initial.rank

    @property
    def speedup_available(self) -> float:
        """initial cost / best cost (1.0 = the designer already won)."""
        if self.best.cost == 0:
            return 1.0
        return self.initial.cost / self.best.cost

    @property
    def risk_avoided(self) -> float:
        """worst cost / best cost -- the spread cost-based choice prevents."""
        if self.best.cost == 0:
            return 1.0
        return self.worst.cost / self.best.cost

    def describe(self, top: int = 5) -> str:
        lines = [
            f"{self.block.name}: {len(self.plans)} plans"
            + (" (truncated)" if self.truncated else "")
            + f"; initial ranks {self.initial_rank}"
            f"; speedup available {self.speedup_available:.2f}x"
            f"; worst/best spread {self.risk_avoided:.2f}x"
        ]
        for plan in self.plans[:top]:
            marker = " <- initial" if plan.is_initial else ""
            lines.append(
                f"  #{plan.rank} cost={plan.cost:g} {plan.tree!r}{marker}"
            )
        if self.initial_rank > top:
            plan = self.initial
            lines.append(
                f"  ... #{plan.rank} cost={plan.cost:g} {plan.tree!r} <- initial"
            )
        return "\n".join(lines)


def rank_plans(
    block: Block,
    cardinalities: dict[AnySE, float],
    metric: str = "cout",
    limit: int = MAX_PLANS,
) -> PlanRanking:
    """Cost every plan of a block; requires full SE coverage (which the
    statistics framework guarantees)."""
    model = PlanCostModel(cardinalities, metric=metric)
    trees = block.graph.enumerate_trees(limit=limit)
    truncated = len(trees) >= limit
    # equi-joins are symmetric: two trees are the same logical plan iff
    # they realize the same set of joins
    initial_key = frozenset(tree_splits(block.initial_tree))
    scored = sorted(
        ((model.tree_cost(tree), repr(tree), tree) for tree in trees),
        key=lambda item: (item[0], item[1]),
    )
    plans = [
        RankedPlan(
            rank=i + 1,
            cost=cost,
            tree=tree,
            is_initial=(frozenset(tree_splits(tree)) == initial_key),
        )
        for i, (cost, _tree_repr, tree) in enumerate(scored)
    ]
    return PlanRanking(block=block, plans=plans, truncated=truncated)


def rank_workflow(
    analysis: BlockAnalysis,
    cardinalities: dict[AnySE, float],
    metric: str = "cout",
) -> dict[str, PlanRanking]:
    """Rankings for every re-orderable block."""
    out: dict[str, PlanRanking] = {}
    for block in analysis.blocks:
        if block.pinned or block.n_way < 2:
            continue
        out[block.name] = rank_plans(block, cardinalities, metric=metric)
    return out
