"""Evaluating CSSs: turning observed statistics into computed ones.

This module is the semantic half of the rule set (Section 4.1): the
generator records *which* statistics suffice, the calculator knows *how* to
combine them.  Given the observed values from an instrumented run, it runs
the CSS catalog to a fixpoint, computing every statistic whose inputs are
available -- in particular the cardinality of every SE in ℰ, which is what
the cost-based optimizer consumes.

Because the source histograms are exact (one bucket per value), every
computed cardinality is exact too; the tests assert equality against brute
force.
"""

from __future__ import annotations

from collections import deque

from repro.core.css import CSS, CssCatalog
from repro.core.histogram import Histogram
from repro.core.statistics import Statistic, StatisticsStore


class CalculationError(ValueError):
    """Raised when a CSS evaluation is malformed."""


def join_histograms(
    h1: Histogram, h2: Histogram, key: tuple[str, ...], bs: tuple[str, ...]
) -> Histogram:
    """Generalized J2: histogram of ``bs`` on the join of two relations.

    ``h1`` / ``h2`` are joint histograms carrying the join key plus the
    ``bs`` attributes each side owns; buckets matching on the key multiply.
    """
    key = tuple(sorted(key))
    bs = tuple(sorted(bs))
    k1 = [h1.attrs.index(a) for a in key]
    k2 = [h2.attrs.index(a) for a in key]
    pulls: list[tuple[int, int]] = []  # (source: 1|2, position)
    for attr in bs:
        if attr in h1.attrs:
            pulls.append((1, h1.attrs.index(attr)))
        elif attr in h2.attrs:
            pulls.append((2, h2.attrs.index(attr)))
        else:
            raise CalculationError(f"attribute {attr!r} on neither input")
    # index h2 buckets by key value
    by_key: dict[tuple, list[tuple[tuple, float]]] = {}
    for bucket, freq in h2.counts.items():
        by_key.setdefault(tuple(bucket[i] for i in k2), []).append((bucket, freq))
    out: dict[tuple, float] = {}
    for bucket1, freq1 in h1.counts.items():
        kv = tuple(bucket1[i] for i in k1)
        for bucket2, freq2 in by_key.get(kv, ()):
            value = tuple(
                bucket1[pos] if src == 1 else bucket2[pos] for src, pos in pulls
            )
            out[value] = out.get(value, 0) + freq1 * freq2
    return Histogram(bs, out)


def group_distinct(h: Histogram, bs: tuple[str, ...]) -> Histogram:
    """Rule G2: per-``bs`` count of distinct group-key buckets.

    After ``G(T, a)`` every group contributes one row, so the frequency of a
    ``bs``-value in the output is the number of distinct ``a``-buckets
    projecting to it.
    """
    bs = tuple(sorted(bs))
    positions = [h.attrs.index(a) for a in bs]
    out: dict[tuple, float] = {}
    for bucket in h.counts:
        sub = tuple(bucket[i] for i in positions)
        out[sub] = out.get(sub, 0) + 1
    return Histogram(bs, out)


class StatisticsCalculator:
    """Fixpoint evaluation of a CSS catalog over observed statistics."""

    def __init__(self, catalog: CssCatalog, observed: StatisticsStore):
        self.catalog = catalog
        self.values = observed.copy()

    # ------------------------------------------------------------------
    def compute_all(self) -> StatisticsStore:
        """Evaluate every computable statistic (bottom-up fixpoint)."""
        waiting: dict[Statistic, list[CSS]] = {}
        remaining: dict[int, int] = {}
        entries: list[CSS] = [
            css for bucket in self.catalog.css.values() for css in bucket
        ]
        ready: deque[CSS] = deque()
        for idx, css in enumerate(entries):
            missing = [s for s in set(css.inputs) if s not in self.values]
            remaining[id(css)] = len(missing)
            if not missing:
                ready.append(css)
            for s in missing:
                waiting.setdefault(s, []).append(css)
        while ready:
            css = ready.popleft()
            if css.target in self.values:
                continue
            self.values.put(css.target, self._evaluate(css))
            for dependent in waiting.get(css.target, []):
                remaining[id(dependent)] -= 1
                if remaining[id(dependent)] == 0:
                    ready.append(dependent)
        return self.values

    def computable(self, stat: Statistic) -> bool:
        return stat in self.values

    # ------------------------------------------------------------------
    def _evaluate(self, css: CSS):
        rule = css.rule
        values = [self.values.get(s) for s in css.inputs]
        target = css.target
        if rule == "J1":
            h1, h2 = values
            return h1.dot(h2)
        if rule == "J2":
            key = tuple(css.ctx("key"))
            bs = tuple(css.ctx("bs"))
            return join_histograms(values[0], values[1], key, bs)
        if rule == "J3":
            return values[0].multiply(values[1])
        if rule == "J4":
            h_big, h_t3, rej_card = values
            survived = h_big.divide(h_t3).total()
            return survived + rej_card
        if rule == "J5":
            h_big, h_t3, h_rej = values
            bs = tuple(sorted(css.ctx("bs")))
            survived = h_big.divide(h_t3).marginalize(bs)
            return survived.add(h_rej)
        if rule == "S1":
            step = self.catalog.step(css.ctx("step"))
            predicate = step.node.predicate.fn
            return values[0].select(step.attrs[0], predicate).total()
        if rule == "S2":
            step = self.catalog.step(css.ctx("step"))
            predicate = step.node.predicate.fn
            bs = tuple(sorted(css.ctx("bs")))
            return (
                values[0].select(step.attrs[0], predicate).marginalize(bs)
            )
        if rule in ("U1", "P1", "B1", "FK", "G1"):
            return values[0]
        if rule in ("U2", "P2"):
            return values[0]
        if rule == "G2":
            return group_distinct(values[0], tuple(css.ctx("bs")))
        if rule == "D1":
            return values[0].distinct_count()
        if rule == "I1":
            return values[0].total()
        if rule == "I2":
            return values[0].marginalize(target.attrs)
        raise CalculationError(f"unknown rule {rule!r}")


def compute_statistics(
    catalog: CssCatalog, observed: StatisticsStore
) -> StatisticsStore:
    """Convenience wrapper: run the calculator to its fixpoint."""
    return StatisticsCalculator(catalog, observed).compute_all()
