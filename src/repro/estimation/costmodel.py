"""Operator and plan cost models (the Step-7 consumer of the statistics).

Section 3.1: *"The most important factors determining the cost of any
operator ... are the cardinalities of the inputs.  Thus, for a given plan,
if the cardinalities of the outputs at all intermediate stages of the plan
are determined, the cost of any operator in the plan and therefore the
total cost of the plan could be computed."*

Two classic metrics are provided:

- ``cout``  -- the sum of intermediate-result sizes (the C_out metric used
  throughout the join-ordering literature);
- ``hash``  -- a hash-join model: build + probe + emit per join node.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.algebra.expressions import AnySE, SubExpression
from repro.algebra.plans import JoinNode, PlanTree, subtrees


class CostModelError(KeyError):
    """Raised when a plan references an SE with no cardinality estimate."""


@dataclass
class PlanCostModel:
    """Costs join trees from SE cardinalities.

    ``cardinalities`` maps every SE to its (estimated or true) size.
    """

    cardinalities: dict[AnySE, float]
    metric: str = "cout"

    def size(self, se: AnySE) -> float:
        try:
            return float(self.cardinalities[se])
        except KeyError:
            raise CostModelError(f"no cardinality estimate for {se!r}") from None

    def join_cost(self, left: SubExpression, right: SubExpression) -> float:
        out = self.size(left.union(right))
        if self.metric == "cout":
            return out
        if self.metric == "hash":
            build = min(self.size(left), self.size(right))
            probe = max(self.size(left), self.size(right))
            return 1.5 * build + probe + out
        raise ValueError(f"unknown metric {self.metric!r}")

    def tree_cost(self, tree: PlanTree) -> float:
        """Total plan cost: every join node's cost, final emit included."""
        total = 0.0
        for node in subtrees(tree):
            if isinstance(node, JoinNode):
                total += self.join_cost(node.left.se, node.right.se)
        return total

    def describe(self, tree: PlanTree) -> str:
        lines = [f"plan cost ({self.metric}) = {self.tree_cost(tree):g}"]
        for node in subtrees(tree):
            if isinstance(node, JoinNode):
                lines.append(
                    f"  {node.se!r}: |out|={self.size(node.se):g} "
                    f"cost={self.join_cost(node.left.se, node.right.se):g}"
                )
        return "\n".join(lines)
