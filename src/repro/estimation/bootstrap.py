"""First-run SE-size bootstrapping (Section 5.4).

The CPU cost of observing a statistic -- and the bucket-count bound of a
histogram -- depend on the size of the SE being observed, which is exactly
what the statistics will eventually measure.  *"We break this circular
dependency by using the SE sizes computed from the previous runs.  In the
first run, we use a coarse approximation based on independence
assumptions, since no previous data is available."*

This module is that coarse approximation.  From per-relation
characteristics (cardinality + per-attribute distinct counts -- the
information the paper synthesizes without generating data), it estimates:

- stage SEs: the base cardinality (filters unknown -> conservative 1.0
  selectivity);
- join SEs: the textbook independence formula
  ``|e1 join_a e2| = |e1| |e2| / max(|a_e1|, |a_e2|)``;
- reject links: ``|e1| * max(0, 1 - coverage)`` where coverage is the
  fraction of the key domain the other side populates;
- reject side-joins: reject size times the per-value fanout of the other
  side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.blocks import Block, BlockAnalysis
from repro.algebra.expressions import (
    AnySE,
    RejectJoinSE,
    RejectSE,
    SubExpression,
)
from repro.algebra.plans import JoinNode, subtrees
from repro.algebra.schema import Catalog


@dataclass
class InputProfile:
    """Characteristics of one block input: cardinality + distinct counts."""

    cardinality: float
    distinct: dict[str, float] = field(default_factory=dict)

    def dv(self, attr: str, default: float = 1.0) -> float:
        return max(self.distinct.get(attr, default), 1.0)


def profiles_from_characteristics(
    analysis: BlockAnalysis,
    cardinalities: dict[str, float],
    distinct: dict[str, dict[str, float]] | None = None,
) -> dict[str, InputProfile]:
    """Build per-block-input profiles from base-relation characteristics.

    ``cardinalities`` maps *base relation* (or boundary feed) names to row
    counts; ``distinct`` optionally maps them to per-attribute distinct
    counts, defaulting to ``min(domain, cardinality)`` -- the conservative
    guess when only the schema is known.
    """
    catalog = analysis.workflow.catalog
    distinct = distinct or {}
    profiles: dict[str, InputProfile] = {}
    for block in analysis.blocks:
        for name, inp in block.inputs.items():
            card = float(
                cardinalities.get(inp.base_name, cardinalities.get(name, 1.0))
            )
            dvs: dict[str, float] = {}
            base_dv = distinct.get(inp.base_name, {})
            for attr in inp.out_attrs:
                if attr in base_dv:
                    dvs[attr] = float(base_dv[attr])
                else:
                    try:
                        dom = catalog.domain_size(attr)
                    except Exception:
                        dom = card
                    dvs[attr] = min(float(dom), card)
            profiles[name] = InputProfile(card, dvs)
    return profiles


class SizeBootstrapper:
    """Independence-assumption SE sizes for a whole workflow."""

    def __init__(self, analysis: BlockAnalysis, profiles: dict[str, InputProfile]):
        self.analysis = analysis
        self.profiles = profiles
        self.catalog: Catalog = analysis.workflow.catalog

    # ------------------------------------------------------------------
    def estimate(self) -> dict[AnySE, float]:
        sizes: dict[AnySE, float] = {}
        for block in self.analysis.blocks:
            self._block_sizes(block, sizes)
        return sizes

    # ------------------------------------------------------------------
    def _block_sizes(self, block: Block, sizes: dict[AnySE, float]) -> None:
        for name, inp in block.inputs.items():
            profile = self.profiles.get(name)
            card = profile.cardinality if profile else 1.0
            for se in inp.stage_ses():
                sizes[se] = card  # filters unknown: conservative
        for se in block.join_ses():
            if len(se) > 1:
                sizes[se] = self._join_size(block, se)
        full = sizes.get(block.join_se, 1.0)
        for se in block.post_stage_ses():
            sizes[se] = full
        sizes[SubExpression.of(block.output_name)] = full
        self._reject_sizes(block, sizes)

    def _join_size(self, block: Block, se: SubExpression) -> float:
        size = 1.0
        for name in se.relations:
            profile = self.profiles.get(name)
            size *= profile.cardinality if profile else 1.0
        for edge in block.graph.edges:
            if edge.u in se.relations and edge.v in se.relations:
                du = self._dv(edge.u, edge.attr)
                dv = self._dv(edge.v, edge.attr)
                size /= max(du, dv)
        return max(size, 0.0)

    def _dv(self, name: str, attr: str) -> float:
        profile = self.profiles.get(name)
        return profile.dv(attr) if profile else 1.0

    def _reject_sizes(self, block: Block, sizes: dict[AnySE, float]) -> None:
        """Estimate every reject link of the initial plan (union-division
        candidates) plus the side joins over them."""
        for node in subtrees(block.initial_tree):
            if not isinstance(node, JoinNode):
                continue
            key = node.key[0] if len(node.key) == 1 else tuple(node.key)
            for side, other in (
                (node.left, node.right),
                (node.right, node.left),
            ):
                reject = RejectSE(side.se, key, other.se)
                side_size = sizes.get(side.se, 1.0)
                coverage = self._coverage(block, other.se, node.key)
                rej_size = side_size * max(0.0, 1.0 - coverage)
                sizes[reject] = rej_size
                # side joins with every other SE the key connects to
                for se2 in block.join_ses():
                    if se2.relations & side.se.relations:
                        continue
                    ke = block.graph.crossing_key(side.se.relations, se2.relations)
                    if not ke:
                        continue
                    fanout = self._fanout(se2, ke, sizes)
                    rj = RejectJoinSE(
                        reject, ke[0] if len(ke) == 1 else ke, se2
                    )
                    sizes[rj] = rej_size * fanout

    def _coverage(self, block: Block, other, key: tuple[str, ...]) -> float:
        """Fraction of the key domain the ``other`` side populates."""
        coverage = 1.0
        for attr in key:
            try:
                dom = float(self.catalog.domain_size(attr))
            except Exception:
                return 0.5
            dv = 1.0
            for name in other.relations:
                dv = max(dv, self._dv(name, attr))
            coverage *= min(dv / dom, 1.0)
        return coverage

    def _fanout(self, se2, key: tuple[str, ...], sizes: dict[AnySE, float]) -> float:
        size = sizes.get(se2, 1.0)
        dv = 1.0
        for attr in key:
            best = 1.0
            for name in se2.relations:
                best = max(best, self._dv(name, attr))
            dv *= best
        return size / max(dv, 1.0)


def bootstrap_se_sizes(
    analysis: BlockAnalysis,
    cardinalities: dict[str, float],
    distinct: dict[str, dict[str, float]] | None = None,
) -> dict[AnySE, float]:
    """Convenience wrapper: profiles + independence estimation."""
    profiles = profiles_from_characteristics(analysis, cardinalities, distinct)
    return SizeBootstrapper(analysis, profiles).estimate()
