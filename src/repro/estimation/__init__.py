"""Estimation and cost-based plan selection from learned statistics."""

from repro.estimation.calculator import (
    CalculationError,
    StatisticsCalculator,
    compute_statistics,
)
from repro.estimation.costmodel import CostModelError, PlanCostModel
from repro.estimation.bootstrap import bootstrap_se_sizes
from repro.estimation.estimator import CardinalityEstimator, EstimationError
from repro.estimation.optimizer import OptimizedPlan, PlanOptimizer, optimize_workflow
from repro.estimation.physical import JoinAlgorithm, PhysicalPlanner, physical_plans
from repro.estimation.sketches import (
    HllSketch,
    SketchError,
    SketchSpec,
    active_sketch_spec,
    configure_sketches,
    make_sketch,
    sketch_scope,
)
from repro.estimation.whatif import PlanRanking, rank_plans, rank_workflow

__all__ = [
    "bootstrap_se_sizes", "CalculationError", "CardinalityEstimator",
    "compute_statistics", "CostModelError", "EstimationError",
    "HllSketch", "JoinAlgorithm", "OptimizedPlan", "physical_plans",
    "PhysicalPlanner", "PlanCostModel", "PlanOptimizer", "PlanRanking",
    "SketchError", "SketchSpec", "active_sketch_spec",
    "configure_sketches", "make_sketch", "rank_plans", "rank_workflow",
    "sketch_scope", "StatisticsCalculator", "optimize_workflow",
]
