"""Cardinality estimation over ℰ from learned statistics."""

from __future__ import annotations

from repro.algebra.expressions import AnySE
from repro.core.css import CssCatalog
from repro.core.statistics import Statistic, StatisticsStore
from repro.estimation.calculator import StatisticsCalculator


class EstimationError(KeyError):
    """Raised when a cardinality cannot be derived from the observations."""


class CardinalityEstimator:
    """Derives |e| for every SE from a set of observed statistics.

    The constructor runs the CSS fixpoint once; lookups are O(1) after.
    """

    def __init__(self, catalog: CssCatalog, observed: StatisticsStore):
        self.catalog = catalog
        calculator = StatisticsCalculator(catalog, observed)
        self.values = calculator.compute_all()

    def cardinality(self, se: AnySE) -> float:
        stat = Statistic.card(se)
        if stat not in self.values:
            raise EstimationError(
                f"cardinality of {se!r} is not computable from the observed "
                "statistics; the selection step should have covered it"
            )
        return float(self.values.get(stat))

    def all_cardinalities(self) -> dict[AnySE, float]:
        """|e| for every required SE (the set S_C)."""
        return {
            stat.se: float(self.values.get(stat))
            for stat in self.catalog.required
            if stat in self.values
        }

    def coverage(self) -> tuple[int, int]:
        """(computable required stats, total required stats)."""
        have = sum(1 for s in self.catalog.required if s in self.values)
        return have, len(self.catalog.required)

    def missing(self) -> list[Statistic]:
        return sorted(
            (s for s in self.catalog.required if s not in self.values),
            key=lambda s: s.sort_key(),
        )
