"""Physical implementation selection -- the [21] extension of Step 7.

The paper's Step 7 picks the join *order*; Tziovara, Vassiliadis & Simitsis
("Deciding the physical implementation of ETL workflows", cited as [21])
extend the decision to the physical operator for each logical join.  With
the learned cardinalities in hand that choice is straightforward cost
arithmetic, so the library includes it: per join node, pick among

- **hash join**: build the smaller side, probe the larger;
- **sort-merge join**: sort whichever inputs are not already sorted on the
  key, then merge (sorted-ness propagates: the merge output is sorted on
  the key, which later merge joins on the same key exploit);
- **nested-loop join**: quadratic fallback, only wins on tiny inputs.

Cost formulas are the textbook ones in abstract row units; the point here
is not IO modelling but that the framework's statistics make *every*
physical alternative costable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.algebra.blocks import BlockAnalysis
from repro.algebra.expressions import AnySE
from repro.algebra.plans import Leaf, PlanTree


class JoinAlgorithm(Enum):
    """The physical join implementations the planner chooses among."""

    HASH = "hash"
    SORT_MERGE = "sort-merge"
    NESTED_LOOP = "nested-loop"


@dataclass(frozen=True)
class PhysicalJoin:
    """One join node's physical decision."""

    se: AnySE
    algorithm: JoinAlgorithm
    cost: float
    output_sorted_on: tuple[str, ...]


@dataclass
class PhysicalPlan:
    """A join tree annotated with physical operator choices."""

    tree: PlanTree
    joins: list[PhysicalJoin] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return sum(j.cost for j in self.joins)

    def algorithm_for(self, se: AnySE) -> JoinAlgorithm:
        for join in self.joins:
            if join.se == se:
                return join.algorithm
        raise KeyError(f"no physical decision for {se!r}")

    def describe(self) -> str:
        lines = [f"physical plan cost = {self.total_cost:g}"]
        for join in self.joins:
            lines.append(
                f"  {join.se!r}: {join.algorithm.value} (cost {join.cost:g})"
            )
        return "\n".join(lines)


#: per-backend cost-factor presets.  The abstract row-unit formulas are the
#: same for every execution backend, but the *constants* are not: the
#: streaming backend pays per-tuple dict materialization on every operator,
#: while the vectorized backend amortizes per-row interpreter overhead into
#: bulk gathers (calibrate with ``benchmarks/bench_backend_throughput.py``).
BACKEND_COST_FACTORS: dict[str, dict[str, float]] = {
    "columnar": {
        "hash_build_factor": 1.5,
        "sort_factor": 1.0,
        "merge_factor": 1.0,
        "nested_factor": 0.25,
    },
    "streaming": {
        "hash_build_factor": 1.9,
        "sort_factor": 1.3,
        "merge_factor": 1.25,
        "nested_factor": 0.32,
    },
    "vectorized": {
        "hash_build_factor": 0.7,
        "sort_factor": 0.45,
        "merge_factor": 0.4,
        "nested_factor": 0.12,
    },
    # shard workers execute with the columnar kernel set; a small
    # surcharge covers shard dispatch and observation merging
    "multiprocess": {
        "hash_build_factor": 1.6,
        "sort_factor": 1.05,
        "merge_factor": 1.05,
        "nested_factor": 0.26,
    },
}

#: constants the sharded (multiprocess) backend's dispatch planner uses to
#: pick a per-block strategy.  A join input smaller than
#: ``broadcast_max_rows`` is cheaper to replicate into every worker than to
#: hash-partition (fork inheritance makes replication nearly free); above
#: it, both join inputs are hash-partitioned on the join key.  The
#: ``*_factor`` entries weigh the two strategies' per-row costs when the
#: cap alone does not decide (see ``repro.engine.dist.sharding``), and
#: ``min_shard_rows`` stops over-sharding tiny tables.
DIST_COST_FACTORS: dict[str, float] = {
    "broadcast_max_rows": 50_000.0,
    "broadcast_build_factor": 1.5,  # per replicated build row, per shard
    "partition_scan_factor": 1.0,  # per row hashed + routed to its shard
    "merge_row_factor": 0.2,  # per output row folded back into the parent
    "min_shard_rows": 64.0,
}

#: cost factors when the plan-compilation layer executes the block: fused
#: whole-column kernels collapse the per-row interpretation gap between
#: backends, so the constants both shrink and converge (the streaming
#: backend keeps a small chunking surcharge; calibrated against
#: ``benchmarks/bench_plan_compile.py`` on wf21).
COMPILED_COST_FACTORS: dict[str, dict[str, float]] = {
    "columnar": {
        "hash_build_factor": 0.12,
        "sort_factor": 0.08,
        "merge_factor": 0.08,
        "nested_factor": 0.02,
    },
    "streaming": {
        "hash_build_factor": 0.17,
        "sort_factor": 0.11,
        "merge_factor": 0.10,
        "nested_factor": 0.03,
    },
    "vectorized": {
        "hash_build_factor": 0.11,
        "sort_factor": 0.07,
        "merge_factor": 0.07,
        "nested_factor": 0.02,
    },
    # workers compile per process against the columnar profile; the same
    # dispatch/merge surcharge as the interpreted constants applies
    "multiprocess": {
        "hash_build_factor": 0.13,
        "sort_factor": 0.09,
        "merge_factor": 0.09,
        "nested_factor": 0.02,
    },
}


@dataclass
class PhysicalCostModel:
    """Abstract per-row costs of the three join implementations."""

    cardinalities: dict[AnySE, float]
    hash_build_factor: float = 1.5
    sort_factor: float = 1.0  # multiplies n*log2(n)
    merge_factor: float = 1.0
    nested_factor: float = 0.25  # per inner-pair probe

    @classmethod
    def for_backend(
        cls,
        backend: str,
        cardinalities: dict[AnySE, float],
        compiled: bool = False,
        **overrides: float,
    ) -> "PhysicalCostModel":
        """Cost model tuned to an execution backend's kernel constants.

        ``compiled=True`` selects the fused-operator constants of the
        plan-compilation layer instead of the interpreter's.
        """
        table = COMPILED_COST_FACTORS if compiled else BACKEND_COST_FACTORS
        try:
            factors = dict(table[backend])
        except KeyError:
            raise KeyError(
                f"no cost factors for backend {backend!r}; "
                f"known: {sorted(table)}"
            ) from None
        factors.update(overrides)
        return cls(cardinalities, **factors)

    def size(self, se: AnySE) -> float:
        return float(self.cardinalities[se])

    def hash_cost(self, left: float, right: float, out: float) -> float:
        build, probe = sorted((left, right))
        return self.hash_build_factor * build + probe + out

    def sort_cost(self, n: float) -> float:
        if n <= 1:
            return 0.0
        return self.sort_factor * n * math.log2(max(n, 2.0))

    def merge_cost(self, left: float, right: float, out: float) -> float:
        return self.merge_factor * (left + right) + out

    def nested_cost(self, left: float, right: float, out: float) -> float:
        return self.nested_factor * left * right + out


class PhysicalPlanner:
    """Bottom-up physical operator selection with sort-order propagation."""

    def __init__(self, model: PhysicalCostModel):
        self.model = model

    def plan(self, tree: PlanTree) -> PhysicalPlan:
        joins: list[PhysicalJoin] = []
        self._visit(tree, joins)
        return PhysicalPlan(tree=tree, joins=joins)

    def _visit(self, node: PlanTree, joins: list[PhysicalJoin]) -> tuple[str, ...]:
        """Returns the key the node's output is sorted on ('' = unsorted)."""
        if isinstance(node, Leaf):
            return ()  # base inputs arrive unsorted
        left_sorted = self._visit(node.left, joins)
        right_sorted = self._visit(node.right, joins)
        left_n = self.model.size(node.left.se)
        right_n = self.model.size(node.right.se)
        out_n = self.model.size(node.se)
        key = tuple(node.key)

        hash_cost = self.model.hash_cost(left_n, right_n, out_n)
        sort_cost = self.model.merge_cost(left_n, right_n, out_n)
        if left_sorted != key:
            sort_cost += self.model.sort_cost(left_n)
        if right_sorted != key:
            sort_cost += self.model.sort_cost(right_n)
        nested_cost = self.model.nested_cost(left_n, right_n, out_n)

        best = min(
            (hash_cost, JoinAlgorithm.HASH),
            (sort_cost, JoinAlgorithm.SORT_MERGE),
            (nested_cost, JoinAlgorithm.NESTED_LOOP),
            key=lambda pair: pair[0],
        )
        joins.append(
            PhysicalJoin(
                se=node.se,
                algorithm=best[1],
                cost=best[0],
                output_sorted_on=key if best[1] is JoinAlgorithm.SORT_MERGE else (),
            )
        )
        return key if best[1] is JoinAlgorithm.SORT_MERGE else ()


def execute_physical(
    tree: PlanTree,
    inputs: dict[str, "object"],
    plan: PhysicalPlan,
):
    """Execute a join tree honouring the plan's algorithm choices.

    ``inputs`` maps leaf names to :class:`~repro.engine.table.Table`.
    All three implementations are semantically identical (the engine's
    property tests pin that), so this mainly exists to demonstrate and test
    the full logical-choice -> physical-execution loop.
    """
    from repro.engine.physical import hash_join, merge_join, nested_loop_join

    def run(node: PlanTree):
        if isinstance(node, Leaf):
            return inputs[node.name]
        left = run(node.left)
        right = run(node.right)
        algorithm = plan.algorithm_for(node.se)
        if algorithm is JoinAlgorithm.SORT_MERGE:
            return merge_join(left, right, node.key)
        if algorithm is JoinAlgorithm.NESTED_LOOP:
            return nested_loop_join(left, right, node.key)
        result, _l, _r = hash_join(left, right, node.key)
        return result

    return run(tree)


def physical_plans(
    analysis: BlockAnalysis,
    cardinalities: dict[AnySE, float],
    trees: dict[str, PlanTree] | None = None,
    backend: str = "columnar",
    compiled: bool = False,
) -> dict[str, PhysicalPlan]:
    """Physical decisions for every block's (chosen or initial) tree.

    ``backend`` selects the per-backend cost constants -- the same join
    tree can warrant different physical operators on different engines --
    and ``compiled`` switches to the fused-kernel constants.
    """
    trees = trees or {}
    planner = PhysicalPlanner(
        PhysicalCostModel.for_backend(backend, cardinalities, compiled=compiled)
    )
    out: dict[str, PhysicalPlan] = {}
    for block in analysis.blocks:
        tree = trees.get(block.name, block.initial_tree)
        out[block.name] = planner.plan(tree)
    return out
