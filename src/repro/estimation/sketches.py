"""Mergeable distinct-count sketches (HyperLogLog with exact fallback).

The engine's distinct taps ride on one seam -- the four-method
``add`` / ``update`` / ``merge`` / ``result`` accumulator protocol of
:class:`~repro.engine.instrumentation.DistinctAccumulator`, constructed
everywhere through
:func:`~repro.engine.instrumentation.make_distinct_accumulator`.  This
module supplies the sketch implementation of that protocol:

- :class:`HllSketch` -- a dense-register HyperLogLog [Flajolet et al.]
  over a deterministic 64-bit hash.  Small cardinalities are tracked as
  an exact value set and *densified* into registers only once the set
  outgrows ``exact_threshold``; because the final register array is the
  pointwise maximum of every value's (index, rank) contribution, the
  sketch state is a pure function of the value *set* -- shard merges in
  any order reproduce the unsharded sketch register for register, which
  is exactly the guarantee the multiprocess backend's tap merge needs.
- :class:`SketchSpec` -- the process-wide configuration consulted by
  ``make_distinct_accumulator``: ``mode="exact"`` keeps the historical
  exact set union, ``mode="hll"`` swaps the sketch in for every backend
  (columnar, streaming, vectorized, compiled and multiprocess taps all
  construct their accumulators through the one factory).
  :func:`sketch_scope` installs a spec for the duration of a pipeline
  cycle; the multiprocess backend ships the active spec to its forked
  workers in each task payload.

Hashing uses ``blake2b(repr(value))`` rather than Python's builtin
``hash`` because the builtin is salted per process: forked shard workers
and the parent must agree on every value's register.

Serialization follows :mod:`repro.core.persistence`: a versioned JSON
document (``to_doc`` / ``from_doc``) with base64 registers, so sketches
survive checkpoints and catalog round-trips.
"""

from __future__ import annotations

import base64
import hashlib
import math
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable

from repro.core.persistence import FORMAT_VERSION, PersistenceError

MIN_PRECISION = 4
MAX_PRECISION = 18
#: 2^14 registers: ~0.81% typical relative error, 16 KiB dense state
DEFAULT_PRECISION = 14

_HASH_BITS = 64


class SketchError(ValueError):
    """Raised for invalid sketch configuration or corrupt documents."""


def hash64(value) -> int:
    """Deterministic 64-bit hash, stable across processes and runs.

    ``repr`` of the tuples the taps accumulate (python scalars) is
    deterministic, and blake2b is unsalted -- a forked worker and its
    parent map every value to the same register/rank pair.
    """
    digest = hashlib.blake2b(
        repr(value).encode("utf-8", "backslashreplace"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def _alpha(m: int) -> float:
    """The standard HLL bias-correction constant for ``m`` registers."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


def _default_threshold(precision: int) -> int:
    # keep small cardinalities exact: the set stays cheaper than the
    # register array until well past this point anyway
    return max(64, (1 << precision) // 64)


@dataclass(frozen=True)
class SketchSpec:
    """Process-wide distinct-accumulator configuration.

    ``mode`` selects the implementation behind
    :func:`~repro.engine.instrumentation.make_distinct_accumulator`:
    ``"exact"`` (set union, the historical behavior) or ``"hll"``.
    ``precision`` is the HLL ``p`` (``2^p`` one-byte registers);
    ``exact_threshold`` is the set size at which a sketch densifies
    (``None`` picks a precision-scaled default).
    """

    mode: str = "exact"
    precision: int = DEFAULT_PRECISION
    exact_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "hll"):
            raise SketchError(
                f"unknown distinct-sketch mode {self.mode!r} "
                "(expected 'exact' or 'hll')"
            )
        if not MIN_PRECISION <= int(self.precision) <= MAX_PRECISION:
            raise SketchError(
                f"sketch precision must be in "
                f"[{MIN_PRECISION}, {MAX_PRECISION}], got {self.precision}"
            )
        if self.exact_threshold is not None and self.exact_threshold < 0:
            raise SketchError(
                f"exact_threshold must be >= 0, got {self.exact_threshold}"
            )

    @property
    def registers(self) -> int:
        return 1 << self.precision


class HllSketch:
    """Mergeable HyperLogLog distinct counter (the sketch accumulator).

    Implements the four-method :class:`~repro.engine.instrumentation
    .DistinctAccumulator` protocol.  State is either an exact value set
    (small cardinalities) or a dense ``2^p``-byte register array; both
    are pure functions of the set of values ever added, so merging
    shards in any order is register-exact.
    """

    __slots__ = ("precision", "exact_threshold", "_values", "_registers")

    def __init__(
        self,
        values: Iterable = (),
        *,
        precision: int = DEFAULT_PRECISION,
        exact_threshold: int | None = None,
    ):
        if not MIN_PRECISION <= int(precision) <= MAX_PRECISION:
            raise SketchError(
                f"sketch precision must be in "
                f"[{MIN_PRECISION}, {MAX_PRECISION}], got {precision}"
            )
        self.precision = int(precision)
        self.exact_threshold = (
            _default_threshold(self.precision)
            if exact_threshold is None
            else int(exact_threshold)
        )
        self._values: set | None = set()
        self._registers: bytearray | None = None
        self.update(values)

    # -- accumulator protocol -------------------------------------------
    def add(self, value) -> None:
        if self._values is not None:
            self._values.add(value)
            if len(self._values) > self.exact_threshold:
                self._densify()
        else:
            self._observe_hash(hash64(value))

    def update(self, values: Iterable) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "HllSketch") -> None:
        """Fold another shard's sketch into this one (register max).

        Mixing implementations or precisions would silently corrupt the
        count, so both raise
        :class:`~repro.engine.instrumentation.InstrumentationError`.
        """
        if not isinstance(other, HllSketch):
            raise self._merge_error(
                f"cannot merge a {type(other).__name__} into an HllSketch: "
                "mixed distinct-accumulator implementations (was one tap "
                "set built outside the active sketch_scope?)"
            )
        if other.precision != self.precision:
            raise self._merge_error(
                f"cannot merge HllSketch(p={other.precision}) into "
                f"HllSketch(p={self.precision}): register arrays are "
                "incompatible across precisions"
            )
        if other._values is not None:
            if self._values is not None:
                self._values |= other._values
                if len(self._values) > self.exact_threshold:
                    self._densify()
            else:
                for value in other._values:
                    self._observe_hash(hash64(value))
            return
        if self._values is not None:
            self._densify()
        mine, theirs = self._registers, other._registers
        for idx, rank in enumerate(theirs):
            if rank > mine[idx]:
                mine[idx] = rank

    def result(self) -> int:
        """The distinct-count estimate (exact while in set mode)."""
        if self._values is not None:
            return len(self._values)
        m = 1 << self.precision
        total = 0.0
        zeros = 0
        for rank in self._registers:
            total += 2.0 ** -rank
            if rank == 0:
                zeros += 1
        raw = _alpha(m) * m * m / total
        if raw <= 2.5 * m and zeros:
            # linear-counting small-range correction
            return int(round(m * math.log(m / zeros)))
        return int(round(raw))

    # -- internals -------------------------------------------------------
    @staticmethod
    def _merge_error(message: str):
        from repro.engine.instrumentation import InstrumentationError

        return InstrumentationError(message)

    def _observe_hash(self, h: int) -> None:
        tail_bits = _HASH_BITS - self.precision
        idx = h >> tail_bits
        tail = h & ((1 << tail_bits) - 1)
        rank = tail_bits - tail.bit_length() + 1
        if rank > self._registers[idx]:
            self._registers[idx] = rank

    def _densify(self) -> None:
        """Convert the exact set into dense registers.

        The conversion hashes the whole retained *set*, so the resulting
        registers do not depend on insertion order -- the property the
        merge-law suite pins at register level.
        """
        values, self._values = self._values, None
        self._registers = bytearray(1 << self.precision)
        for value in values:
            self._observe_hash(hash64(value))

    # -- introspection ---------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """Still within the exact-set small-cardinality fallback?"""
        return self._values is not None

    @property
    def relative_error(self) -> float:
        """The precision-implied typical relative error (1.04/sqrt(m))."""
        return 1.04 / math.sqrt(1 << self.precision)

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the accumulator state."""
        if self._values is not None:
            return sys.getsizeof(self._values) + sum(
                sys.getsizeof(value) for value in self._values
            )
        return len(self._registers)

    def __len__(self) -> int:
        return self.result()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HllSketch):
            return NotImplemented
        if self.precision != other.precision:
            return False
        if (self._values is None) != (other._values is None):
            return False
        if self._values is not None:
            return self._values == other._values
        return self._registers == other._registers

    def __repr__(self) -> str:
        state = (
            f"exact:{len(self._values)}"
            if self._values is not None
            else "dense"
        )
        return (
            f"HllSketch(p={self.precision}, {state}, "
            f"estimate={self.result()})"
        )

    # -- versioned JSON round-trip --------------------------------------
    def to_doc(self) -> dict:
        doc = {
            "format_version": FORMAT_VERSION,
            "kind": "hll_sketch",
            "precision": self.precision,
            "exact_threshold": self.exact_threshold,
        }
        if self._values is not None:
            doc["mode"] = "exact"
            doc["values"] = sorted(
                (list(value) for value in self._values), key=repr
            )
        else:
            doc["mode"] = "dense"
            doc["registers"] = base64.b64encode(
                bytes(self._registers)
            ).decode("ascii")
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "HllSketch":
        if not isinstance(doc, dict) or doc.get("kind") != "hll_sketch":
            raise PersistenceError(f"not an hll_sketch document: {doc!r}")
        version = doc.get("format_version")
        if not isinstance(version, int) or version > FORMAT_VERSION:
            raise PersistenceError(
                f"hll_sketch format_version {version!r} is newer than "
                f"supported ({FORMAT_VERSION})"
            )
        try:
            sketch = cls(
                precision=int(doc["precision"]),
                exact_threshold=int(doc["exact_threshold"]),
            )
            mode = doc["mode"]
            if mode == "exact":
                values = {tuple(value) for value in doc["values"]}
                if len(values) > sketch.exact_threshold:
                    raise PersistenceError(
                        "hll_sketch exact payload exceeds its own threshold"
                    )
                sketch._values = values
            elif mode == "dense":
                registers = bytearray(
                    base64.b64decode(doc["registers"].encode("ascii"))
                )
                if len(registers) != 1 << sketch.precision:
                    raise PersistenceError(
                        f"hll_sketch register payload has "
                        f"{len(registers)} registers, expected "
                        f"{1 << sketch.precision}"
                    )
                sketch._values = None
                sketch._registers = registers
            else:
                raise PersistenceError(
                    f"unknown hll_sketch mode {mode!r}"
                )
        except PersistenceError:
            raise
        except (KeyError, TypeError, ValueError, SketchError) as exc:
            raise PersistenceError(
                f"corrupt hll_sketch document: {exc}"
            ) from exc
        return sketch


# -- process-wide configuration ---------------------------------------------

_ACTIVE_SPEC = SketchSpec()


def active_sketch_spec() -> SketchSpec:
    """The spec ``make_distinct_accumulator`` consults right now."""
    return _ACTIVE_SPEC


def configure_sketches(spec: "SketchSpec | dict | None") -> SketchSpec:
    """Install a new active spec; returns the previous one.

    Shard workers call this with the spec shipped in each task payload,
    so a warm pool follows the parent across configuration changes.
    """
    global _ACTIVE_SPEC
    if spec is None:
        spec = SketchSpec()
    elif isinstance(spec, dict):
        spec = SketchSpec(**spec)
    previous, _ACTIVE_SPEC = _ACTIVE_SPEC, spec
    return previous


@contextmanager
def sketch_scope(spec: "SketchSpec | dict | None"):
    """Scope the active spec to a ``with`` block (pipeline cycles)."""
    previous = configure_sketches(spec)
    try:
        yield active_sketch_spec()
    finally:
        configure_sketches(previous)


def make_sketch(spec: SketchSpec | None = None, values: Iterable = ()) -> HllSketch:
    """Build an :class:`HllSketch` following ``spec`` (default: active)."""
    spec = active_sketch_spec() if spec is None else spec
    return HllSketch(
        values,
        precision=spec.precision,
        exact_threshold=spec.exact_threshold,
    )


__all__ = [
    "DEFAULT_PRECISION",
    "MAX_PRECISION",
    "MIN_PRECISION",
    "HllSketch",
    "SketchError",
    "SketchSpec",
    "active_sketch_spec",
    "configure_sketches",
    "hash64",
    "make_sketch",
    "sketch_scope",
]
