"""Cost-based plan selection (Section 3.2.7).

A classic dynamic-programming join-order optimizer over each block's
connected subsets: because the statistics framework guarantees a
cardinality for *every* SE, the optimizer can cost every candidate plan --
which is the whole point of the paper.  Bushy trees are considered; cross
products never (the enumeration only yields connected splits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.blocks import Block, BlockAnalysis
from repro.algebra.expressions import AnySE
from repro.algebra.plans import JoinNode, Leaf, PlanTree
from repro.estimation.costmodel import PlanCostModel


@dataclass
class OptimizedPlan:
    """The chosen tree for one block, with its estimated cost.

    ``confidence`` records the provenance of the cardinalities behind the
    choice: ``"observed"`` (tonight's instrumented run), ``"prior"`` (a
    previous run's persisted statistics), ``"independence"`` (the no-
    statistics baseline) or ``"none"`` (unoptimizable this cycle -- the
    tree is the block's fallback plan, costs are NaN).
    """

    block: Block
    tree: PlanTree
    cost: float
    initial_cost: float
    confidence: str = "observed"

    @property
    def improved(self) -> bool:
        return self.cost < self.initial_cost


class PlanOptimizer:
    """DP join-order optimization per optimizable block."""

    def __init__(
        self,
        analysis: BlockAnalysis,
        cardinalities: dict[AnySE, float],
        metric: str = "cout",
    ):
        self.analysis = analysis
        self.model = PlanCostModel(cardinalities, metric=metric)

    def optimize_block(self, block: Block) -> OptimizedPlan:
        best: dict[frozenset[str], tuple[float, PlanTree]] = {}
        for name in block.inputs:
            best[frozenset({name})] = (0.0, Leaf(name))

        ses = sorted(block.join_ses(), key=lambda se: (len(se), sorted(se.relations)))
        for se in ses:
            if len(se) == 1:
                continue
            candidates: list[tuple[float, PlanTree]] = []
            for split in block.graph.splits_for(se):
                left = best.get(split.left.relations)
                right = best.get(split.right.relations)
                if left is None or right is None:
                    continue
                cost = (
                    left[0]
                    + right[0]
                    + self.model.join_cost(split.left, split.right)
                )
                candidates.append(
                    (cost, JoinNode(left[1], right[1], split.key))
                )
            if not candidates:
                raise ValueError(f"no plan for {se!r} in block {block.name}")
            best[se.relations] = min(candidates, key=lambda c: c[0])

        full = block.join_se
        if len(full) == 1:
            tree: PlanTree = Leaf(full.base_name)
            cost = 0.0
        else:
            cost, tree = best[full.relations]
        return OptimizedPlan(
            block=block,
            tree=tree,
            cost=cost,
            initial_cost=self.model.tree_cost(block.initial_tree),
        )

    def optimize_or_fallback(
        self,
        block: Block,
        fallback_tree: PlanTree | None = None,
        confidence: str = "observed",
    ) -> OptimizedPlan:
        """Like per-block optimization, but degradation-safe.

        When the cardinalities cannot cost the block (statistics lost to a
        failed run and no fallback estimates either), the block keeps
        ``fallback_tree`` (default: its initial plan) with NaN costs and
        confidence ``"none"`` instead of raising.
        """
        tree = fallback_tree or block.initial_tree
        try:
            if block.pinned:
                cost = self.model.tree_cost(block.initial_tree)
                plan = OptimizedPlan(
                    block=block,
                    tree=block.initial_tree,
                    cost=cost,
                    initial_cost=cost,
                )
            else:
                plan = self.optimize_block(block)
            plan.confidence = confidence
            return plan
        except (KeyError, ValueError):
            return OptimizedPlan(
                block=block,
                tree=tree,
                cost=float("nan"),
                initial_cost=float("nan"),
                confidence="none",
            )

    def optimize(self) -> dict[str, OptimizedPlan]:
        """Best plan per block; pinned blocks keep their initial plan."""
        plans: dict[str, OptimizedPlan] = {}
        for block in self.analysis.blocks:
            if block.pinned:
                cost = self.model.tree_cost(block.initial_tree)
                plans[block.name] = OptimizedPlan(
                    block=block,
                    tree=block.initial_tree,
                    cost=cost,
                    initial_cost=cost,
                )
            else:
                plans[block.name] = self.optimize_block(block)
        return plans

    def chosen_trees(self) -> dict[str, PlanTree]:
        return {name: plan.tree for name, plan in self.optimize().items()}


def optimize_workflow(
    analysis: BlockAnalysis,
    cardinalities: dict[AnySE, float],
    metric: str = "cout",
) -> dict[str, OptimizedPlan]:
    """Convenience wrapper over :class:`PlanOptimizer`."""
    return PlanOptimizer(analysis, cardinalities, metric=metric).optimize()
