"""The degrading catalog client.

:class:`CatalogClient` speaks to a ``repro-etl serve`` daemon while
presenting the exact duck interface of
:class:`~repro.catalog.store.StatisticsCatalog`, so the pipeline, the
drift reconciler and the fleet planner cannot tell (and must not care)
whether the catalog is a local file or a server across a socket.

The robustness contract is the headline: **a vanished server demotes
confidence, it never fails the run.**  The machinery, outermost first:

- every request runs behind a **timeout** and seeded exponential
  **retry/backoff** (the :class:`~repro.engine.scheduler.RetryPolicy`
  discipline -- transient errors are retried, a dead server is not);
- a **circuit breaker** counts consecutive request failures and, once
  open, fails calls instantly instead of stacking timeouts;
- on the first unrecoverable failure the client **degrades**: its
  in-memory mirror (seeded from the server at first contact, optionally
  from a local fallback catalog file) serves every later read, writes
  are folded into the fallback file at :meth:`save`, and ``degraded``
  flips ``True`` -- which the pipeline translates into plan confidence
  dropping one rung down the observed → catalog → prior → independence
  ladder.

Writes are *staged* locally in order and flushed by :meth:`save` under a
server lease: the flush acquires a fence token and attaches it to every
mutation, so a client that stalls mid-save and loses its lease has the
rest of its flush rejected (HTTP 409) rather than interleaved with its
successor's.

Chaos tests drive all of this deterministically through the
``server-kill`` / ``server-hang`` / ``net-flap`` fault kinds of
:mod:`repro.engine.faults`, consulted at every request boundary.
"""

from __future__ import annotations

import http.client
import os
import socket
import threading
import time
from pathlib import Path

from repro.catalog.store import (
    DEFAULT_MIN_QUALITY,
    DEFAULT_TTL,
    CatalogEntry,
    CatalogHits,
    StatisticsCatalog,
)
from repro.core.persistence import PersistenceError
from repro.engine.faults import PermanentFault, TransientFault, as_injector
from repro.engine.scheduler import RetryPolicy
from repro.serve.service import FenceError

#: URL prefixes that select the client over the file-backed store
CATALOG_URL_PREFIXES = ("http://", "https://", "unix://")

#: consecutive request failures before the breaker opens
DEFAULT_BREAKER_THRESHOLD = 3

#: seconds the breaker stays open before allowing a probe
DEFAULT_BREAKER_COOLDOWN = 30.0

#: per-request socket timeout, seconds
DEFAULT_TIMEOUT = 2.0


class CatalogUnavailable(PersistenceError):
    """The server could not be reached (after retries / breaker open)."""


class CatalogRequestError(PersistenceError):
    """The server answered, but with an error status."""


def is_catalog_url(spec) -> bool:
    """Does this ``stats_catalog=`` value name a served catalog?"""
    return isinstance(spec, str) and spec.startswith(CATALOG_URL_PREFIXES)


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket."""

    def __init__(self, path: str, timeout: float):
        super().__init__("localhost", timeout=timeout)
        self.unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.unix_path)
        self.sock = sock


class CatalogClient:
    """A ``StatisticsCatalog`` look-alike backed by a catalog server."""

    def __init__(
        self,
        url: str,
        *,
        fallback: StatisticsCatalog | str | Path | None = None,
        ttl: float = DEFAULT_TTL,
        min_quality: float = DEFAULT_MIN_QUALITY,
        timeout: float = DEFAULT_TIMEOUT,
        max_retries: int = 2,
        base_delay: float = 0.05,
        max_delay: float = 1.0,
        seed: int = 0,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        client_id: str = "",
        faults=None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        self.url = url.rstrip("/")
        self.ttl = ttl
        self.min_quality = min_quality
        self.timeout = timeout
        self.client_id = client_id or f"client-{os.getpid()}"
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.clock = clock

        if isinstance(fallback, StatisticsCatalog):
            self._fallback = fallback
        elif fallback is not None:
            self._fallback = StatisticsCatalog.open(
                fallback, ttl=ttl, min_quality=min_quality
            )
        else:
            self._fallback = None

        #: local view of the server's entries; after degradation it IS the
        #: catalog (seeded from the last sync and/or the fallback file)
        self._mirror = StatisticsCatalog(None, ttl=ttl, min_quality=min_quality)
        self._staged: list[tuple[str, list]] = []  # ordered, coalesced ops
        self._synced = False
        self.degraded = False
        self.fence: int | None = None
        self.requests_sent = 0
        self.retries = 0

        self._policy = RetryPolicy(
            max_retries=max_retries,
            base_delay=base_delay,
            max_delay=max_delay,
            seed=seed,
            sleep=sleep,
        )
        self._rng = self._policy.rng_for(self.url)
        self._injector = as_injector(faults)
        self._failures = 0
        self._breaker_open_until = 0.0
        self._conn: http.client.HTTPConnection | None = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # transport: timeout -> retry/backoff -> circuit breaker
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._conn is None:
            if self.url.startswith("unix://"):
                self._conn = _UnixHTTPConnection(
                    self.url[len("unix://"):], self.timeout
                )
            else:
                hostport = self.url.split("://", 1)[1]
                host, _, port = hostport.rpartition(":")
                self._conn = http.client.HTTPConnection(
                    host or hostport,
                    int(port) if port.isdigit() else 80,
                    timeout=self.timeout,
                )
        return self._conn

    def _drop_conn(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - close cannot matter here
                pass
            self._conn = None

    def _once(self, method: str, path: str, doc) -> tuple[int, dict]:
        import json

        conn = self._connect()
        body = None
        headers = {}
        if doc is not None:
            body = json.dumps(doc).encode("utf-8")
            headers = {"Content-Type": "application/json"}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        payload = response.read()
        try:
            answer = json.loads(payload) if payload else {}
        except json.JSONDecodeError:
            answer = {"error": payload.decode("utf-8", "replace")[:200]}
        return response.status, answer

    def _request(self, method: str, path: str, doc=None) -> dict:
        """One logical request: retries transients, trips the breaker."""
        with self._lock:
            now = self.clock()
            if now < self._breaker_open_until:
                raise CatalogUnavailable(
                    f"catalog {self.url} circuit breaker open for another "
                    f"{self._breaker_open_until - now:.1f}s"
                )
            attempt = 0
            while True:
                self.requests_sent += 1
                try:
                    if self._injector is not None:
                        self._injector.on_request(path)
                    status, answer = self._once(method, path, doc)
                except PermanentFault as exc:
                    # a dead server does not heal by retrying
                    self._drop_conn()
                    self._record_failure()
                    raise CatalogUnavailable(
                        f"catalog {self.url} unreachable: {exc}"
                    ) from exc
                except (
                    TransientFault,
                    OSError,
                    http.client.HTTPException,
                ) as exc:
                    self._drop_conn()
                    if attempt >= self._policy.max_retries:
                        self._record_failure()
                        raise CatalogUnavailable(
                            f"catalog {self.url} unreachable after "
                            f"{attempt + 1} attempt(s): {exc}"
                        ) from exc
                    self._policy.sleep(self._policy.backoff(attempt, self._rng))
                    attempt += 1
                    self.retries += 1
                    continue
                break
            self._failures = 0  # any answered request closes the breaker
            if status == 409:
                raise FenceError(answer.get("error", "stale fence token"))
            if status >= 400:
                raise CatalogRequestError(
                    answer.get("error", f"catalog server answered {status}")
                )
            return answer

    def _record_failure(self) -> None:
        self._failures += 1
        if self._failures >= self.breaker_threshold:
            self._breaker_open_until = self.clock() + self.breaker_cooldown

    # ------------------------------------------------------------------
    # degradation
    # ------------------------------------------------------------------
    def _degrade(self) -> None:
        """Fall back to the local view; reads and writes keep working."""
        if not self.degraded:
            self.degraded = True
            if self._fallback is not None:
                # fallback entries fill whatever the mirror never saw
                for key, entry in self._fallback.entries.items():
                    self._mirror.entries.setdefault(key, entry)

    def _ensure_synced(self) -> None:
        """Seed the mirror from the server once per client lifetime."""
        if self._synced or self.degraded:
            return
        try:
            doc = self._request("GET", "/export")
        except (CatalogUnavailable, CatalogRequestError):
            self._degrade()
            return
        for entry_doc in doc.get("entries", []):
            entry = CatalogEntry.from_dict(entry_doc)
            self._mirror.entries[entry.key] = entry
        self._synced = True

    # ------------------------------------------------------------------
    # StatisticsCatalog duck interface: reads
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        # truthy, so the pipeline calls save(); the URL doubles as the
        # display name in CLI output
        return self.url

    @property
    def entries(self) -> dict[str, CatalogEntry]:
        self._ensure_synced()
        return self._mirror.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def get(self, key: str) -> CatalogEntry | None:
        self._ensure_synced()
        return self._mirror.get(key)

    def usable_keys(self, now: float | None = None) -> set[str]:
        self._ensure_synced()
        return self._mirror.usable_keys(now)

    def entries_on_se(self, se_key: str) -> list[CatalogEntry]:
        self._ensure_synced()
        return self._mirror.entries_on_se(se_key)

    def describe(self) -> str:
        self._ensure_synced()
        mode = "degraded to local view" if self.degraded else "connected"
        return f"catalog service {self.url} ({mode})\n" + self._mirror.describe()

    def lookup(
        self, signer, stats, now: float | None = None, count_hits: bool = True
    ) -> CatalogHits:
        """Match candidate statistics; server answers, mirror absorbs.

        When the server is healthy the answer is authoritative (and bumps
        server-side hit counters); after degradation the mirror -- last
        synced state plus the fallback file -- answers instead, which is
        the "catalog" rung of the confidence ladder with one rung knocked
        off by the pipeline.
        """
        from repro.catalog.signatures import SignatureError

        self._ensure_synced()
        if not self.degraded:
            keys: dict = {}
            for stat in stats:
                try:
                    keys[stat] = signer.statistic_key(stat)
                except SignatureError:
                    continue
            try:
                body = {
                    "keys": sorted(set(keys.values())),
                    "count_hits": bool(count_hits),
                }
                if now is not None:
                    body["now"] = now
                answer = self._request("POST", "/lookup", body)
            except (CatalogUnavailable, CatalogRequestError):
                self._degrade()
            else:
                by_key: dict[str, CatalogEntry] = {}
                for entry_doc in answer.get("entries", []):
                    entry = CatalogEntry.from_dict(entry_doc)
                    by_key[entry.key] = entry
                    self._mirror.entries[entry.key] = entry
                hits = CatalogHits()
                for stat, key in keys.items():
                    entry = by_key.get(key)
                    if entry is None:
                        continue
                    hits.free.add(stat)
                    hits.values.put(stat, entry.value())
                    hits.keys[stat] = key
                    hits.newest_observed_at = max(
                        hits.newest_observed_at, entry.observed_at
                    )
                return hits
        return self._mirror.lookup(signer, stats, now=now, count_hits=count_hits)

    # ------------------------------------------------------------------
    # StatisticsCatalog duck interface: writes (staged, flushed by save)
    # ------------------------------------------------------------------
    def _stage(self, op: str, item) -> None:
        if self._staged and self._staged[-1][0] == op:
            self._staged[-1][1].append(item)
        else:
            self._staged.append((op, [item]))

    def record(self, key, se_key, stat, value, **provenance) -> CatalogEntry:
        entry = self._mirror.record(key, se_key, stat, value, **provenance)
        self._stage("put", entry.to_dict())
        return entry

    def mark_stale(self, keys) -> int:
        keys = list(keys)
        marked = self._mirror.mark_stale(keys)
        for key in keys:
            self._stage("stale", key)
        return marked

    def adjust_quality(self, key: str, rel_error: float) -> None:
        self._mirror.adjust_quality(key, rel_error)
        self._stage("quality", [key, float(rel_error)])

    def gc(self, **kwargs) -> int:
        if not self.degraded:
            try:
                answer = self._request("POST", "/gc", kwargs or {})
                self._mirror.gc(**kwargs)
                return int(answer.get("removed", 0))
            except (CatalogUnavailable, CatalogRequestError):
                self._degrade()
        return self._mirror.gc(**kwargs)

    def merge(self, other: StatisticsCatalog) -> int:
        docs = [entry.to_dict() for entry in other.entries.values()]
        if not self.degraded:
            try:
                self._request("POST", "/merge", {"entries": docs})
            except (CatalogUnavailable, CatalogRequestError):
                self._degrade()
        return self._mirror.merge(other)

    def save(self, path=None, merge: bool = True) -> None:
        """Flush staged writes under a lease-fenced server transaction.

        Healthy path: acquire a lease (fresh fence token), send every
        staged op in order carrying that fence -- the server WALs and acks
        each before the next is sent.  A :class:`FenceError` mid-flush
        means another writer took over; it propagates, because silently
        dropping acknowledged-to-the-caller state is the one forbidden
        outcome.  Degraded path: the staged ops are folded into the local
        fallback catalog file instead (merge-on-save, advisory-locked),
        so the night's observations survive for tomorrow's server merge.
        """
        ops, self._staged = self._staged, []
        if not self.degraded:
            try:
                self.fence = int(
                    self._request(
                        "POST", "/lease", {"holder": self.client_id}
                    )["fence"]
                )
                for op, items in ops:
                    if op == "put":
                        self._request(
                            "POST",
                            "/put",
                            {"entries": items, "fence": self.fence},
                        )
                    elif op == "stale":
                        self._request(
                            "POST",
                            "/stale",
                            {"keys": items, "fence": self.fence},
                        )
                    elif op == "quality":
                        self._request(
                            "POST",
                            "/quality",
                            {"adjust": items, "fence": self.fence},
                        )
                # give the lease back so the fleet's next run is not
                # locked out for a whole TTL by a finished save
                self._request(
                    "POST", "/lease/release", {"fence": self.fence}
                )
                return
            except (CatalogUnavailable, CatalogRequestError):
                self._degrade()
        if self._fallback is not None:
            for op, items in ops:
                if op == "put":
                    for doc in items:
                        entry = CatalogEntry.from_dict(doc)
                        self._fallback.entries[entry.key] = entry
                elif op == "stale":
                    self._fallback.mark_stale(items)
                elif op == "quality":
                    for key, rel_error in items:
                        self._fallback.adjust_quality(key, rel_error)
            if self._fallback.path is not None:
                self._fallback.save(merge=merge)

    # ------------------------------------------------------------------
    # extras (not part of the store interface)
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def claim_share(self, night: str, *, number: int | None = None,
                    workflow_doc: dict | None = None,
                    solver: str = "greedy") -> dict:
        """Ask the server which statistics *this* client taps tonight."""
        body: dict = {"night": night, "client": self.client_id, "solver": solver}
        if number is not None:
            body["number"] = number
        if workflow_doc is not None:
            body["workflow"] = workflow_doc
        return self._request("POST", "/fleet/claim", body)

    def close(self) -> None:
        self._drop_conn()


def resolve_stats_catalog(spec, **client_kwargs):
    """``stats_catalog=`` coercion: URL -> client, path -> file store."""
    if is_catalog_url(spec):
        return CatalogClient(spec, **client_kwargs)
    if isinstance(spec, (str, Path)):
        return StatisticsCatalog.open(spec)
    return spec


__all__ = [
    "CATALOG_URL_PREFIXES",
    "CatalogClient",
    "CatalogRequestError",
    "CatalogUnavailable",
    "is_catalog_url",
    "resolve_stats_catalog",
]
