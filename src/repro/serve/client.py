"""The degrading catalog client.

:class:`CatalogClient` speaks to a ``repro-etl serve`` daemon while
presenting the exact duck interface of
:class:`~repro.catalog.store.StatisticsCatalog`, so the pipeline, the
drift reconciler and the fleet planner cannot tell (and must not care)
whether the catalog is a local file or a server across a socket.

The robustness contract is the headline: **a vanished server demotes
confidence, it never fails the run.**  The machinery, outermost first:

- every request runs behind a **timeout** and seeded exponential
  **retry/backoff** (the :class:`~repro.engine.scheduler.RetryPolicy`
  discipline -- transient errors are retried, a dead server is not);
- a **circuit breaker** counts consecutive request failures and, once
  open, fails calls instantly instead of stacking timeouts;
- on the first unrecoverable failure the client **degrades**: its
  in-memory mirror (seeded from the server at first contact, optionally
  from a local fallback catalog file) serves every later read, writes
  are folded into the fallback file at :meth:`save`, and ``degraded``
  flips ``True`` -- which the pipeline translates into plan confidence
  dropping one rung down the observed → catalog → prior → independence
  ladder.

Writes are *staged* locally in order and flushed by :meth:`save` under a
server lease: the flush acquires a fence token and attaches it to every
mutation, so a client that stalls mid-save and loses its lease has the
rest of its flush rejected (HTTP 409) rather than interleaved with its
successor's.

**High availability.**  The ``url`` may be a comma-separated endpoint
list (``run --catalog URL1,URL2``).  Each endpoint gets its own
connection, failure count and circuit breaker; a request walks the list
starting at the last endpoint that answered, and only when *every*
endpoint is down (or breaker-open) does :class:`CatalogUnavailable`
escape -- which is the only path to degradation, so one dead box out of
a replicated pair never costs plan confidence.  Three 409 shapes steer
the walk: a ``not_primary`` answer redirects the write to the advertised
primary (and, if that primary is dead, asks the answering standby to
promote itself); a ``stale_epoch`` answer with a *higher* epoch makes
the client adopt it and retry; one with a *lower* epoch marks the
endpoint as a fenced stale primary to be skipped.  Writes carry the
highest epoch the client has seen, which is exactly what lets a
promoted standby's service fence a resurrected stale primary's clients
(and vice versa).  Failovers are counted in :attr:`failovers` and
surface as the run's ``catalog_failovers_total`` metric.

Chaos tests drive all of this deterministically through the
``server-kill`` / ``server-hang`` / ``net-flap`` / ``primary-kill``
fault kinds of :mod:`repro.engine.faults`, consulted at every request
boundary.
"""

from __future__ import annotations

import http.client
import os
import socket
import threading
import time
from pathlib import Path

from repro.catalog.store import (
    DEFAULT_MIN_QUALITY,
    DEFAULT_TTL,
    CatalogEntry,
    CatalogHits,
    StatisticsCatalog,
)
from repro.core.persistence import PersistenceError
from repro.engine.faults import PermanentFault, TransientFault, as_injector
from repro.engine.scheduler import RetryPolicy
from repro.serve.service import FenceError

#: URL prefixes that select the client over the file-backed store
CATALOG_URL_PREFIXES = ("http://", "https://", "unix://")

#: consecutive request failures before the breaker opens
DEFAULT_BREAKER_THRESHOLD = 3

#: seconds the breaker stays open before allowing a probe
DEFAULT_BREAKER_COOLDOWN = 30.0

#: per-request socket timeout, seconds
DEFAULT_TIMEOUT = 2.0


#: POST routes that mutate catalog state and therefore carry the epoch
EPOCHED_PATHS = frozenset(
    {"/put", "/merge", "/stale", "/quality", "/gc", "/lease",
     "/lease/release", "/fleet/claim"}
)


class CatalogUnavailable(PersistenceError):
    """No endpoint could be reached (after retries / breakers open)."""


class CatalogRequestError(PersistenceError):
    """The server answered, but with an error status."""


class _NotPrimary(Exception):
    """Internal: a standby refused a write; ``primary`` names the leader."""

    def __init__(self, primary: str, message: str):
        super().__init__(message)
        self.primary = primary


class _StaleEpoch(Exception):
    """Internal: an epoch-fenced 409; ``epoch`` is the server's."""

    def __init__(self, epoch: int, message: str):
        super().__init__(message)
        self.epoch = epoch


def is_catalog_url(spec) -> bool:
    """Does this ``stats_catalog=`` value name a served catalog?"""
    return isinstance(spec, str) and spec.startswith(CATALOG_URL_PREFIXES)


def split_catalog_urls(spec: str) -> list[str]:
    """A ``URL1,URL2`` endpoint list -> normalized URLs (order kept)."""
    urls = [part.strip().rstrip("/") for part in spec.split(",")]
    urls = [url for url in urls if url]
    if not urls:
        raise PersistenceError(f"empty catalog endpoint list {spec!r}")
    for url in urls:
        if not url.startswith(CATALOG_URL_PREFIXES):
            raise PersistenceError(
                f"bad catalog endpoint {url!r} in {spec!r}; endpoints "
                f"must start with one of {CATALOG_URL_PREFIXES}"
            )
    return urls


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket."""

    def __init__(self, path: str, timeout: float):
        super().__init__("localhost", timeout=timeout)
        self.unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.unix_path)
        self.sock = sock


class _Endpoint:
    """One catalog server: its connection, failures and breaker state."""

    __slots__ = ("url", "conn", "failures", "open_until")

    def __init__(self, url: str):
        self.url = url.rstrip("/")
        self.conn: http.client.HTTPConnection | None = None
        self.failures = 0  # consecutive failures (resets on any answer)
        self.open_until = 0.0  # breaker: reject instantly until this time

    def drop(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - close cannot matter here
                pass
            self.conn = None


class CatalogClient:
    """A ``StatisticsCatalog`` look-alike backed by catalog server(s)."""

    def __init__(
        self,
        url: str,
        *,
        fallback: StatisticsCatalog | str | Path | None = None,
        ttl: float = DEFAULT_TTL,
        min_quality: float = DEFAULT_MIN_QUALITY,
        timeout: float = DEFAULT_TIMEOUT,
        max_retries: int = 2,
        base_delay: float = 0.05,
        max_delay: float = 1.0,
        seed: int = 0,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        client_id: str = "",
        faults=None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        if isinstance(url, str):
            urls = split_catalog_urls(url)
        else:
            urls = [u.rstrip("/") for u in url]
            if not urls:
                raise PersistenceError("empty catalog endpoint list")
        self.endpoints = [_Endpoint(u) for u in urls]
        self.url = ",".join(urls)
        self.ttl = ttl
        self.min_quality = min_quality
        self.timeout = timeout
        self.client_id = client_id or f"client-{os.getpid()}"
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.clock = clock

        if isinstance(fallback, StatisticsCatalog):
            self._fallback = fallback
        elif fallback is not None:
            self._fallback = StatisticsCatalog.open(
                fallback, ttl=ttl, min_quality=min_quality
            )
        else:
            self._fallback = None

        #: local view of the server's entries; after degradation it IS the
        #: catalog (seeded from the last sync and/or the fallback file)
        self._mirror = StatisticsCatalog(None, ttl=ttl, min_quality=min_quality)
        self._staged: list[tuple[str, list]] = []  # ordered, coalesced ops
        self._synced = False
        self.degraded = False
        self.fence: int | None = None
        self.epoch = 0  # highest promotion epoch seen across endpoints
        self.failovers = 0  # times a request succeeded on a new endpoint
        self.requests_sent = 0
        self.retries = 0

        self._policy = RetryPolicy(
            max_retries=max_retries,
            base_delay=base_delay,
            max_delay=max_delay,
            seed=seed,
            sleep=sleep,
        )
        self._rng = self._policy.rng_for(self.url)
        self._injector = as_injector(faults)
        self._active = 0  # index of the endpoint serving requests now
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # transport: timeout -> retry/backoff -> breaker -> endpoint failover
    # ------------------------------------------------------------------
    def _connect(self, endpoint: _Endpoint | None = None):
        endpoint = self.endpoints[self._active] if endpoint is None else endpoint
        if endpoint.conn is None:
            url = endpoint.url
            if url.startswith("unix://"):
                endpoint.conn = _UnixHTTPConnection(
                    url[len("unix://"):], self.timeout
                )
            else:
                hostport = url.split("://", 1)[1]
                host, _, port = hostport.rpartition(":")
                endpoint.conn = http.client.HTTPConnection(
                    host or hostport,
                    int(port) if port.isdigit() else 80,
                    timeout=self.timeout,
                )
        return endpoint.conn

    def _drop_conn(self) -> None:
        for endpoint in self.endpoints:
            endpoint.drop()

    def _once(
        self, endpoint: _Endpoint, method: str, path: str, doc
    ) -> tuple[int, dict]:
        import json

        conn = self._connect(endpoint)
        body = None
        headers = {}
        if doc is not None:
            body = json.dumps(doc).encode("utf-8")
            headers = {"Content-Type": "application/json"}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        payload = response.read()
        try:
            answer = json.loads(payload) if payload else {}
        except json.JSONDecodeError:
            answer = {"error": payload.decode("utf-8", "replace")[:200]}
        return response.status, answer

    def _request_endpoint(
        self, endpoint: _Endpoint, method: str, path: str, doc=None
    ) -> dict:
        """One request against one endpoint: retry transients, map 409s."""
        attempt = 0
        while True:
            self.requests_sent += 1
            try:
                if self._injector is not None:
                    self._injector.on_request(path, endpoint=endpoint.url)
                status, answer = self._once(endpoint, method, path, doc)
            except PermanentFault as exc:
                # a dead server does not heal by retrying
                endpoint.drop()
                self._record_failure(endpoint)
                raise CatalogUnavailable(
                    f"catalog {endpoint.url} unreachable: {exc}"
                ) from exc
            except (
                TransientFault,
                OSError,
                http.client.HTTPException,
            ) as exc:
                endpoint.drop()
                if attempt >= self._policy.max_retries:
                    self._record_failure(endpoint)
                    raise CatalogUnavailable(
                        f"catalog {endpoint.url} unreachable after "
                        f"{attempt + 1} attempt(s): {exc}"
                    ) from exc
                self._policy.sleep(self._policy.backoff(attempt, self._rng))
                attempt += 1
                self.retries += 1
                continue
            break
        endpoint.failures = 0  # any answer closes this endpoint's breaker
        endpoint.open_until = 0.0
        if status == 409:
            if answer.get("not_primary"):
                raise _NotPrimary(
                    str(answer.get("primary", "")),
                    answer.get("error", "not the primary"),
                )
            if answer.get("stale_epoch"):
                raise _StaleEpoch(
                    int(answer.get("epoch", 0)),
                    answer.get("error", "stale epoch"),
                )
            raise FenceError(answer.get("error", "stale fence token"))
        if status >= 400:
            raise CatalogRequestError(
                answer.get("error", f"catalog server answered {status}")
            )
        self._learn_epoch(answer)
        return answer

    def _learn_epoch(self, answer) -> None:
        if isinstance(answer, dict):
            try:
                self.epoch = max(self.epoch, int(answer.get("epoch", 0)))
            except (TypeError, ValueError):
                pass

    def _with_epoch(self, path: str, doc):
        """Attach the cluster epoch to mutating bodies (split-brain fence)."""
        if self.epoch and path in EPOCHED_PATHS:
            doc = dict(doc or {})
            doc.setdefault("epoch", self.epoch)
        return doc

    def _endpoint_for(self, url: str) -> _Endpoint:
        """The endpoint for a redirect target, learned if previously unknown."""
        url = url.rstrip("/")
        for endpoint in self.endpoints:
            if endpoint.url == url:
                return endpoint
        endpoint = _Endpoint(url)
        self.endpoints.append(endpoint)
        return endpoint

    def _request(self, method: str, path: str, doc=None) -> dict:
        """One logical request: walk the endpoints until one answers.

        The walk starts at the last endpoint that answered; each stop
        gets its own retry/backoff and breaker bookkeeping.  A standby's
        redirect pushes the advertised primary to the front of the walk
        (keeping the standby as the fallback: if the primary is dead the
        standby is asked to promote and the write retried there).  Only
        when every endpoint failed does :class:`CatalogUnavailable`
        escape to the degradation path.
        """
        with self._lock:
            count = len(self.endpoints)
            queue = [
                self.endpoints[(self._active + step) % count]
                for step in range(count)
            ]
            tried: set[str] = set()
            skipped_open = 0
            hops = 0
            last_error: Exception | None = None
            while queue and hops < 2 * count + 4:
                endpoint = queue.pop(0)
                if endpoint.url in tried:
                    continue
                tried.add(endpoint.url)
                hops += 1
                now = self.clock()
                if now < endpoint.open_until:
                    skipped_open += 1
                    last_error = CatalogUnavailable(
                        f"catalog {endpoint.url} circuit breaker open for "
                        f"another {endpoint.open_until - now:.1f}s"
                    )
                    continue
                try:
                    answer = self._request_endpoint(
                        endpoint, method, path, self._with_epoch(path, doc)
                    )
                except CatalogUnavailable as exc:
                    last_error = exc
                    continue
                except _NotPrimary as exc:
                    answer = self._handle_not_primary(
                        endpoint, exc, method, path, doc, queue, tried
                    )
                    if answer is None:
                        last_error = CatalogUnavailable(str(exc))
                        continue
                except _StaleEpoch as exc:
                    if exc.epoch > self.epoch:
                        # a standby was promoted since we last synced:
                        # adopt the new epoch and retry right here
                        self.epoch = exc.epoch
                        tried.discard(endpoint.url)
                        queue.insert(0, endpoint)
                        continue
                    # the endpoint is a fenced stale primary: skip it
                    last_error = CatalogUnavailable(
                        f"catalog {endpoint.url} is fenced at a stale "
                        f"epoch (ours is {self.epoch}): {exc}"
                    )
                    continue
                self._settle_active(endpoint)
                return answer
            if skipped_open and skipped_open >= len(tried):
                raise last_error  # every endpoint's circuit breaker open
            raise last_error if last_error is not None else CatalogUnavailable(
                f"no catalog endpoint of {self.url} reachable"
            )

    def _handle_not_primary(
        self, endpoint, exc, method, path, doc, queue, tried
    ):
        """A standby refused a write: redirect, or promote it and retry.

        Returns the successful answer, or ``None`` when this branch could
        not complete the request (the walk continues).
        """
        primary = (
            self._endpoint_for(exc.primary) if exc.primary else None
        )
        if primary is not None and primary.url not in tried:
            # chase the advertised primary first, but come back to this
            # standby if the primary turns out to be the dead box
            queue.insert(0, primary)
            queue.append(endpoint)
            tried.discard(endpoint.url)
            return None
        # the advertised primary was already tried (and failed) or the
        # standby knows none: ask the standby itself to take over
        try:
            promoted = self._request_endpoint(endpoint, "POST", "/promote", {})
            self._learn_epoch(promoted)
            self.failovers += 1
            return self._request_endpoint(
                endpoint, method, path, self._with_epoch(path, doc)
            )
        except (CatalogUnavailable, _NotPrimary, _StaleEpoch):
            return None

    def _settle_active(self, endpoint: _Endpoint) -> None:
        try:
            index = self.endpoints.index(endpoint)
        except ValueError:  # pragma: no cover - endpoints only grow
            return
        if index != self._active:
            self._active = index
            self.failovers += 1

    def _record_failure(self, endpoint: _Endpoint) -> None:
        endpoint.failures += 1
        if endpoint.failures >= self.breaker_threshold:
            endpoint.open_until = self.clock() + self.breaker_cooldown

    # ------------------------------------------------------------------
    # degradation
    # ------------------------------------------------------------------
    def _degrade(self) -> None:
        """Fall back to the local view; reads and writes keep working."""
        if not self.degraded:
            self.degraded = True
            if self._fallback is not None:
                # fallback entries fill whatever the mirror never saw
                for key, entry in self._fallback.entries.items():
                    self._mirror.entries.setdefault(key, entry)

    def _ensure_synced(self) -> None:
        """Seed the mirror from the server once per client lifetime."""
        if self._synced or self.degraded:
            return
        try:
            doc = self._request("GET", "/export")
        except (CatalogUnavailable, CatalogRequestError):
            self._degrade()
            return
        for entry_doc in doc.get("entries", []):
            entry = CatalogEntry.from_dict(entry_doc)
            self._mirror.entries[entry.key] = entry
        self._synced = True

    # ------------------------------------------------------------------
    # StatisticsCatalog duck interface: reads
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        # truthy, so the pipeline calls save(); the URL doubles as the
        # display name in CLI output
        return self.url

    @property
    def entries(self) -> dict[str, CatalogEntry]:
        self._ensure_synced()
        return self._mirror.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def get(self, key: str) -> CatalogEntry | None:
        self._ensure_synced()
        return self._mirror.get(key)

    def usable_keys(self, now: float | None = None) -> set[str]:
        self._ensure_synced()
        return self._mirror.usable_keys(now)

    def entries_on_se(self, se_key: str) -> list[CatalogEntry]:
        self._ensure_synced()
        return self._mirror.entries_on_se(se_key)

    def describe(self) -> str:
        self._ensure_synced()
        mode = "degraded to local view" if self.degraded else "connected"
        return f"catalog service {self.url} ({mode})\n" + self._mirror.describe()

    def lookup(
        self, signer, stats, now: float | None = None, count_hits: bool = True
    ) -> CatalogHits:
        """Match candidate statistics; server answers, mirror absorbs.

        When the server is healthy the answer is authoritative (and bumps
        server-side hit counters); after degradation the mirror -- last
        synced state plus the fallback file -- answers instead, which is
        the "catalog" rung of the confidence ladder with one rung knocked
        off by the pipeline.
        """
        from repro.catalog.signatures import SignatureError

        self._ensure_synced()
        if not self.degraded:
            keys: dict = {}
            for stat in stats:
                try:
                    keys[stat] = signer.statistic_key(stat)
                except SignatureError:
                    continue
            try:
                body = {
                    "keys": sorted(set(keys.values())),
                    "count_hits": bool(count_hits),
                }
                if now is not None:
                    body["now"] = now
                answer = self._request("POST", "/lookup", body)
            except (CatalogUnavailable, CatalogRequestError):
                self._degrade()
            else:
                by_key: dict[str, CatalogEntry] = {}
                for entry_doc in answer.get("entries", []):
                    entry = CatalogEntry.from_dict(entry_doc)
                    by_key[entry.key] = entry
                    self._mirror.entries[entry.key] = entry
                hits = CatalogHits()
                for stat, key in keys.items():
                    entry = by_key.get(key)
                    if entry is None:
                        continue
                    hits.free.add(stat)
                    hits.values.put(stat, entry.value())
                    hits.keys[stat] = key
                    hits.newest_observed_at = max(
                        hits.newest_observed_at, entry.observed_at
                    )
                return hits
        return self._mirror.lookup(signer, stats, now=now, count_hits=count_hits)

    # ------------------------------------------------------------------
    # StatisticsCatalog duck interface: writes (staged, flushed by save)
    # ------------------------------------------------------------------
    def _stage(self, op: str, item) -> None:
        if self._staged and self._staged[-1][0] == op:
            self._staged[-1][1].append(item)
        else:
            self._staged.append((op, [item]))

    def record(self, key, se_key, stat, value, **provenance) -> CatalogEntry:
        entry = self._mirror.record(key, se_key, stat, value, **provenance)
        self._stage("put", entry.to_dict())
        return entry

    def mark_stale(self, keys) -> int:
        keys = list(keys)
        marked = self._mirror.mark_stale(keys)
        for key in keys:
            self._stage("stale", key)
        return marked

    def adjust_quality(self, key: str, rel_error: float) -> None:
        self._mirror.adjust_quality(key, rel_error)
        self._stage("quality", [key, float(rel_error)])

    def gc(self, **kwargs) -> int:
        if not self.degraded:
            try:
                answer = self._request("POST", "/gc", kwargs or {})
                self._mirror.gc(**kwargs)
                return int(answer.get("removed", 0))
            except (CatalogUnavailable, CatalogRequestError):
                self._degrade()
        return self._mirror.gc(**kwargs)

    def merge(self, other: StatisticsCatalog) -> int:
        docs = [entry.to_dict() for entry in other.entries.values()]
        if not self.degraded:
            try:
                self._request("POST", "/merge", {"entries": docs})
            except (CatalogUnavailable, CatalogRequestError):
                self._degrade()
        return self._mirror.merge(other)

    def save(self, path=None, merge: bool = True) -> None:
        """Flush staged writes under a lease-fenced server transaction.

        Healthy path: acquire a lease (fresh fence token), send every
        staged op in order carrying that fence -- the server WALs and acks
        each before the next is sent.  A :class:`FenceError` mid-flush
        means another writer took over; it propagates, because silently
        dropping acknowledged-to-the-caller state is the one forbidden
        outcome.  Degraded path: the staged ops are folded into the local
        fallback catalog file instead (merge-on-save, advisory-locked),
        so the night's observations survive for tomorrow's server merge.
        """
        ops, self._staged = self._staged, []
        if not self.degraded:
            try:
                self.fence = int(
                    self._request(
                        "POST", "/lease", {"holder": self.client_id}
                    )["fence"]
                )
                for op, items in ops:
                    if op == "put":
                        self._request(
                            "POST",
                            "/put",
                            {"entries": items, "fence": self.fence},
                        )
                    elif op == "stale":
                        self._request(
                            "POST",
                            "/stale",
                            {"keys": items, "fence": self.fence},
                        )
                    elif op == "quality":
                        self._request(
                            "POST",
                            "/quality",
                            {"adjust": items, "fence": self.fence},
                        )
                # give the lease back so the fleet's next run is not
                # locked out for a whole TTL by a finished save
                self._request(
                    "POST", "/lease/release", {"fence": self.fence}
                )
                return
            except (CatalogUnavailable, CatalogRequestError):
                self._degrade()
        if self._fallback is not None:
            for op, items in ops:
                if op == "put":
                    for doc in items:
                        entry = CatalogEntry.from_dict(doc)
                        self._fallback.entries[entry.key] = entry
                elif op == "stale":
                    self._fallback.mark_stale(items)
                elif op == "quality":
                    for key, rel_error in items:
                        self._fallback.adjust_quality(key, rel_error)
            if self._fallback.path is not None:
                self._fallback.save(merge=merge)

    # ------------------------------------------------------------------
    # extras (not part of the store interface)
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def claim_share(self, night: str, *, number: int | None = None,
                    workflow_doc: dict | None = None,
                    solver: str = "greedy") -> dict:
        """Ask the server which statistics *this* client taps tonight."""
        body: dict = {"night": night, "client": self.client_id, "solver": solver}
        if number is not None:
            body["number"] = number
        if workflow_doc is not None:
            body["workflow"] = workflow_doc
        return self._request("POST", "/fleet/claim", body)

    def close(self) -> None:
        self._drop_conn()


def resolve_stats_catalog(spec, **client_kwargs):
    """``stats_catalog=`` coercion: URL -> client, path -> file store."""
    if is_catalog_url(spec):
        return CatalogClient(spec, **client_kwargs)
    if isinstance(spec, (str, Path)):
        return StatisticsCatalog.open(spec)
    return spec


__all__ = [
    "CATALOG_URL_PREFIXES",
    "CatalogClient",
    "CatalogRequestError",
    "CatalogUnavailable",
    "is_catalog_url",
    "resolve_stats_catalog",
    "split_catalog_urls",
]
