"""Write-ahead log backing the statistics-catalog service.

The durability contract of :mod:`repro.serve` is exactly one sentence: a
write the server acknowledged survives ``SIGKILL``.  The mechanism is the
classic one -- before a mutation touches the in-memory store, a record
describing it is appended here and ``fsync``'d; only then is the client
answered.  On startup the service replays the log over the last snapshot
and arrives at the same state byte for byte.

Each record is one line::

    <crc32 hex, 8 chars> <compact JSON payload>\\n

The payload carries ``{"v": WAL_FORMAT_VERSION, "seq": N, "op": ...}``
plus op-specific fields.  Sequence numbers are strictly increasing; the
snapshot stores the last sequence it absorbed, so replay after a crash
between snapshot and truncation skips already-applied records instead of
double-applying non-idempotent ones (quality blends).

A ``SIGKILL`` mid-append leaves a *torn tail*: a final line with no
newline, half a JSON document, or a checksum that does not match.  Replay
treats the first such line as the end of the log and discards everything
from it on -- those bytes were never acknowledged, so losing them is the
contract, not a violation of it.  Anything wrong *before* the tail (a bad
checksum followed by healthy records) is real corruption and raises.

Replication adds one special record: the **epoch header**, an
``{"op": "epoch", "seq": 0, "epoch": N}`` record carrying the promotion
epoch of the server that owns this log.  It is the only record allowed to
carry ``seq`` 0, it is never yielded by :meth:`WriteAheadLog.replay`
(it sets :attr:`WriteAheadLog.epoch` instead), and :meth:`truncate`
re-seeds it into the fresh log so the epoch survives snapshots.  A
promoted standby bumps the epoch with :meth:`write_epoch`; a resurrected
stale primary replays a lower epoch and is fenced by the service.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Iterator

try:  # pragma: no cover - fcntl is present on every POSIX we target
    import fcntl
except ImportError:  # pragma: no cover - windows
    fcntl = None

from repro.core.persistence import PersistenceError

#: version stamped into every record; replay accepts 1..WAL_FORMAT_VERSION
WAL_FORMAT_VERSION = 1

#: operations a record may carry (the service defines their semantics)
WAL_OPS = ("put", "stale", "quality", "delete", "merge", "lease")

#: the header op marking the log owner's promotion epoch (seq 0, not replayed)
WAL_EPOCH_OP = "epoch"


class WalError(PersistenceError):
    """Raised for real WAL corruption (not a torn tail, which is normal)."""


def encode_record(doc: dict) -> bytes:
    """One framed record: checksum, space, compact JSON, newline."""
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    body = payload.encode("utf-8")
    return f"{zlib.crc32(body) & 0xFFFFFFFF:08x} ".encode() + body + b"\n"


def decode_record(line: bytes) -> dict | None:
    """Parse one framed line; ``None`` means torn/unparseable."""
    if not line.endswith(b"\n") or len(line) < 10 or line[8:9] != b" ":
        return None
    body = line[9:-1]
    try:
        expected = int(line[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(body) & 0xFFFFFFFF != expected:
        return None
    try:
        doc = json.loads(body)
    except json.JSONDecodeError:
        return None
    if not isinstance(doc, dict):
        return None
    return doc


class WriteAheadLog:
    """Append-only, fsync'd record log with torn-tail-tolerant replay."""

    def __init__(self, path: str | Path, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._fh = None
        self.last_seq = 0  # highest sequence appended or replayed
        self.epoch = 0  # promotion epoch from the header record (0 = unset)
        self.records_written = 0
        # two servers appending to one log interleave acknowledged
        # records and race the truncation swap: refuse the second one
        # at startup instead of corrupting state at shutdown
        self._lock_fd = None
        if fcntl is not None:
            lock_path = self.path.with_name(self.path.name + ".lock")
            fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError as exc:
                os.close(fd)
                raise WalError(
                    f"WAL {self.path} is held by another catalog server "
                    f"(lock {lock_path}): one daemon per catalog"
                ) from exc
            self._lock_fd = fd

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _handle(self):
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, op: str, seq: int, **fields) -> int:
        """Durably append one record; returns ``seq`` once it is on disk.

        The ``fsync`` is what makes the acknowledgement honest: after this
        returns, a ``SIGKILL`` (or power cut, modulo the disk's own cache)
        cannot lose the record.
        """
        if op not in WAL_OPS:
            raise WalError(f"unknown WAL op {op!r}; expected one of {WAL_OPS}")
        doc = {"v": WAL_FORMAT_VERSION, "seq": seq, "op": op, **fields}
        handle = self._handle()
        handle.write(encode_record(doc))
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self.last_seq = seq
        self.records_written += 1
        return seq

    def write_epoch(self, epoch: int) -> None:
        """Durably record the owner's promotion epoch (a ``seq`` 0 header).

        The epoch never decreases: a promoted standby writes its bumped
        epoch here so that even after a crash-and-restart it outranks the
        primary it replaced.
        """
        if not isinstance(epoch, int) or epoch < 1:
            raise WalError(f"bad WAL epoch {epoch!r}; epochs start at 1")
        if epoch < self.epoch:
            raise WalError(
                f"WAL epoch cannot go backwards ({self.epoch} -> {epoch})"
            )
        doc = {"v": WAL_FORMAT_VERSION, "seq": 0, "op": WAL_EPOCH_OP, "epoch": epoch}
        handle = self._handle()
        handle.write(encode_record(doc))
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self.epoch = epoch

    def _close_handle(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    def close(self) -> None:
        self._close_handle()
        if self._lock_fd is not None:
            try:
                os.close(self._lock_fd)
            except OSError:  # pragma: no cover - close cannot matter here
                pass
            self._lock_fd = None

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self, after_seq: int = 0) -> Iterator[dict]:
        """Yield every durable record with ``seq > after_seq``, in order.

        The torn tail -- at most one damaged *final* line -- is silently
        discarded (its bytes were never acknowledged).  Damage anywhere
        else raises :class:`WalError`: the log claims acknowledged records
        after the damage, so losing them silently would break the
        durability contract.
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            doc = decode_record(line)
            if doc is None:
                if index == len(lines) - 1:
                    break  # torn tail: the unacknowledged final write
                raise WalError(
                    f"WAL {self.path} is corrupt at record {index + 1} "
                    f"(damage before the tail; {len(lines) - index - 1} "
                    "acknowledged record(s) follow it)"
                )
            version = doc.get("v")
            if not isinstance(version, int) or not 1 <= version <= WAL_FORMAT_VERSION:
                raise WalError(
                    f"WAL {self.path} record {index + 1} has unsupported "
                    f"version {version!r}"
                )
            if doc.get("op") == WAL_EPOCH_OP:
                epoch = doc.get("epoch")
                if not isinstance(epoch, int) or epoch < 1:
                    raise WalError(
                        f"WAL {self.path} record {index + 1} has bad "
                        f"epoch {epoch!r}"
                    )
                self.epoch = max(self.epoch, epoch)
                continue  # header record: state, not a mutation
            seq = doc.get("seq")
            if not isinstance(seq, int) or seq <= 0:
                raise WalError(
                    f"WAL {self.path} record {index + 1} has bad seq {seq!r}"
                )
            self.last_seq = max(self.last_seq, seq)
            if seq <= after_seq:
                continue  # already absorbed by the snapshot
            yield doc

    # ------------------------------------------------------------------
    # truncation (after a snapshot absorbed everything)
    # ------------------------------------------------------------------
    def truncate(self) -> None:
        """Atomically reset the log after a snapshot absorbed it.

        The snapshot carries ``last_seq``, so even a crash *before* this
        truncation is safe -- replay skips the absorbed records.  The swap
        is an atomic rename: there is never a moment with a half-written
        log on disk.  The epoch header is re-seeded into the fresh log so
        promotion state survives every snapshot.
        """
        self._close_handle()  # keep the server's exclusive lock
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            if self.epoch:
                handle.write(
                    encode_record(
                        {
                            "v": WAL_FORMAT_VERSION,
                            "seq": 0,
                            "op": WAL_EPOCH_OP,
                            "epoch": self.epoch,
                        }
                    )
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)


__all__ = [
    "WAL_EPOCH_OP",
    "WAL_FORMAT_VERSION",
    "WAL_OPS",
    "WalError",
    "WriteAheadLog",
    "decode_record",
    "encode_record",
]
