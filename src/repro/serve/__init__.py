"""Catalog-as-a-service: the statistics catalog behind a socket.

The paper's Section 6.2 sharing scheme pays off when a *fleet* of ETL
pipelines draws on one statistics catalog.  This package turns the
file-backed :class:`~repro.catalog.store.StatisticsCatalog` into a
long-lived daemon (``repro-etl serve``) and a degrading client:

- :mod:`repro.serve.wal` -- fsync'd, checksummed write-ahead log; an
  acknowledged write survives ``SIGKILL``, a torn tail is discarded;
- :mod:`repro.serve.service` -- the transport-free store: sharded reads,
  WAL-then-memory writes, lease-fenced writers, write-behind snapshots,
  and the fleet "what must I tap tonight?" scheduler;
- :mod:`repro.serve.server` -- stdlib HTTP over TCP or a unix socket,
  ``/metrics`` + ``/healthz`` on the shared Prometheus exporter;
- :mod:`repro.serve.client` -- :class:`~repro.serve.client.CatalogClient`,
  a ``StatisticsCatalog`` look-alike with timeouts, seeded retry, a
  circuit breaker, and degradation to the local file catalog -- a
  vanished server demotes plan confidence, never fails the run.
"""

from repro.serve.client import (
    CatalogClient,
    CatalogRequestError,
    CatalogUnavailable,
    is_catalog_url,
    resolve_stats_catalog,
)
from repro.serve.server import ServerThread, make_server, parse_listen
from repro.serve.service import CatalogService, FenceError
from repro.serve.wal import WalError, WriteAheadLog

__all__ = [
    "CatalogClient",
    "CatalogRequestError",
    "CatalogService",
    "CatalogUnavailable",
    "FenceError",
    "ServerThread",
    "WalError",
    "WriteAheadLog",
    "is_catalog_url",
    "make_server",
    "parse_listen",
    "resolve_stats_catalog",
]
