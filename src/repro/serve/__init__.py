"""Catalog-as-a-service: the statistics catalog behind a socket.

The paper's Section 6.2 sharing scheme pays off when a *fleet* of ETL
pipelines draws on one statistics catalog.  This package turns the
file-backed :class:`~repro.catalog.store.StatisticsCatalog` into a
long-lived daemon (``repro-etl serve``) and a degrading client:

- :mod:`repro.serve.wal` -- fsync'd, checksummed write-ahead log; an
  acknowledged write survives ``SIGKILL``, a torn tail is discarded;
- :mod:`repro.serve.service` -- the transport-free store: sharded reads,
  WAL-then-memory writes, lease-fenced writers, write-behind snapshots,
  and the fleet "what must I tap tonight?" scheduler;
- :mod:`repro.serve.server` -- stdlib HTTP over TCP or a unix socket,
  ``/metrics`` + ``/healthz`` on the shared Prometheus exporter;
- :mod:`repro.serve.client` -- :class:`~repro.serve.client.CatalogClient`,
  a ``StatisticsCatalog`` look-alike with timeouts, seeded retry,
  per-endpoint circuit breakers, write failover across a list of
  endpoints, and degradation to the local file catalog -- a vanished
  server demotes plan confidence, never fails the run;
- :mod:`repro.serve.replication` -- the standby's WAL-stream tailer:
  ``serve --replicate-from URL`` replays the primary's log, tracks lag,
  and promotes itself (epoch-fenced) when the primary goes silent.
"""

from repro.serve.client import (
    CatalogClient,
    CatalogRequestError,
    CatalogUnavailable,
    is_catalog_url,
    resolve_stats_catalog,
    split_catalog_urls,
)
from repro.serve.replication import ReplicationError, ReplicationTailer
from repro.serve.server import ServerThread, make_server, parse_listen
from repro.serve.service import (
    CatalogService,
    EpochError,
    FenceError,
    NotPrimaryError,
    SnapshotDaemon,
)
from repro.serve.wal import WalError, WriteAheadLog

__all__ = [
    "CatalogClient",
    "CatalogRequestError",
    "CatalogService",
    "CatalogUnavailable",
    "EpochError",
    "FenceError",
    "NotPrimaryError",
    "ReplicationError",
    "ReplicationTailer",
    "ServerThread",
    "SnapshotDaemon",
    "WalError",
    "WriteAheadLog",
    "is_catalog_url",
    "make_server",
    "parse_listen",
    "resolve_stats_catalog",
    "split_catalog_urls",
]
