"""HTTP transport for the statistics-catalog service.

Stdlib only: :class:`http.server.ThreadingHTTPServer` over TCP, or a
``ThreadingMixIn`` + :class:`socketserver.UnixStreamServer` composition
for unix-domain sockets (the low-latency same-host path the benchmarks
measure).  Requests and responses are JSON; connections are HTTP/1.1
keep-alive so a client's nightly conversation pays the connect cost once.

Endpoints
---------

===========================  ====================================================
``GET /healthz``             liveness + store summary (entries, WAL seq, fence)
``GET /metrics``             Prometheus 0.0.4 text (the shared exporter)
``GET /keys``                usable signature keys
``GET /export``              the full catalog document (client mirror seed)
``POST /lookup``             ``{keys}`` -> usable entries (counts hits)
``POST /entries``            ``{se_keys}`` -> every entry on those SEs
``POST /put``                ``{entries, fence?}`` -> insert/replace (WAL'd)
``POST /merge``              ``{entries, fence?}`` -> newer-observation-wins fold
``POST /stale``              ``{keys, fence?}`` -> mark for re-observation
``POST /quality``            ``{adjust: [[key, rel_error]..], fence?}``
``POST /gc``                 ``{ttl?, min_quality?, drop_stale?, fence?}``
``POST /lease``              ``{holder, ttl?}`` -> ``{fence}`` (writer lease)
``POST /lease/release``      ``{fence}`` -> give the lease back after a save
``POST /fleet/claim``        ``{number | workflow, night, client?}`` -> my share
``POST /snapshot``           force a write-behind snapshot + WAL truncation
``GET /wal/stream?from=N``   replication stream: records past N, or a reset
``POST /promote``            make this standby the primary (epoch bump)
===========================  ====================================================

Writes carrying a stale fence token answer **409** -- the holder's lease
was taken over and its buffered night must not clobber the successor's.
Two more 409 shapes drive high availability: a mutation against a standby
answers ``{"not_primary": true, "primary": URL}`` (the client should
redirect), and a mutation carrying a stale promotion epoch answers
``{"stale_epoch": true, "epoch": N}`` (split-brain fencing -- the writer,
or the server itself, was superseded by a promoted standby).
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.core.persistence import PersistenceError
from repro.obs.metrics import MetricsRegistry
from repro.serve.service import (
    DEFAULT_SNAPSHOT_INTERVAL,
    CatalogService,
    EpochError,
    FenceError,
    NotPrimaryError,
    SnapshotDaemon,
)


def _fleet_workflow(body: dict):
    """Resolve the workflow a fleet-claim request talks about."""
    if "number" in body:
        from repro.workloads import case

        return case(int(body["number"])).build()
    if "workflow" in body:
        from repro.algebra.serialize import workflow_from_dict

        return workflow_from_dict(body["workflow"])
    raise PersistenceError("fleet claim needs 'number' or 'workflow'")


class CatalogRequestHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP facade over one :class:`CatalogService`."""

    server_version = "repro-catalog/1"
    protocol_version = "HTTP/1.1"  # keep-alive: one connection per night

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def service(self) -> CatalogService:
        return self.server.service

    @property
    def metrics(self) -> MetricsRegistry:
        return self.server.metrics

    def address_string(self) -> str:  # unix sockets have no peer address
        try:
            return super().address_string()
        except (TypeError, IndexError):  # pragma: no cover - platform quirk
            return "unix"

    def log_message(self, format: str, *args) -> None:
        self.server.log(f"{self.address_string()} {format % args}")

    def _reply(self, status: int, doc: dict) -> None:
        if doc.get("_sent"):
            return  # the route already streamed its own (non-JSON) body
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b"{}"
        doc = json.loads(raw or b"{}")
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    def _handle(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        route = f"{method} {path}"
        started = time.perf_counter()
        self.server.request_began()
        try:
            status, doc = self._dispatch(method)
        except NotPrimaryError as exc:
            # redirect semantics: the body names the primary to retry on
            status, doc = 409, {
                "error": str(exc),
                "not_primary": True,
                "primary": exc.primary,
                "epoch": self.service.epoch,
            }
        except EpochError as exc:
            # split-brain fencing: the writer (or this server) is stale
            status, doc = 409, {
                "error": str(exc),
                "stale_epoch": True,
                "epoch": self.service.epoch,
            }
        except FenceError as exc:
            status, doc = 409, {"error": str(exc)}
        except (PersistenceError, ValueError, KeyError) as exc:
            status, doc = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the server must not die
            status, doc = 500, {"error": f"{type(exc).__name__}: {exc}"}
            self.server.log(f"ERROR {route}: {doc['error']}")
        try:
            self._reply(status, doc)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client vanished mid-reply; its retry will re-ask
        finally:
            # the drain in shutdown counts a request done only once its
            # reply is on the wire
            self.server.request_ended()
        self.metrics.counter(
            "catalog_server_requests_total", "requests by route and status"
        ).inc(route=path, status=str(status))
        self.metrics.histogram(
            "catalog_server_request_seconds", "server-side request latency"
        ).observe(time.perf_counter() - started, route=path)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._handle("POST")

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> tuple[int, dict]:
        service = self.service
        path, _, query = self.path.partition("?")
        if method == "GET":
            if path == "/healthz":
                doc = service.stats()
                tailer = getattr(self.server, "tailer", None)
                if tailer is not None:
                    doc["replication_lag"] = tailer.lag
                    doc["upstream"] = tailer.primary_url
                return 200, doc
            if path == "/wal/stream":
                from urllib.parse import parse_qs

                params = parse_qs(query)
                try:
                    from_seq = int(params.get("from", ["0"])[0])
                except ValueError as exc:
                    raise ValueError(
                        f"bad ?from= cursor in {self.path!r}"
                    ) from exc
                return 200, service.wal_stream(from_seq)
            if path == "/metrics":
                # /metrics is text, not JSON: short-circuit the reply
                body = self.metrics.render_prometheus().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return 200, {"_sent": True}
            if path == "/keys":
                return 200, {"keys": sorted(service.usable_keys())}
            if path == "/export":
                # the full catalog document (clients seed their mirror
                # from this; it is also a valid on-disk catalog file)
                return 200, service.to_dict()
            return 404, {"error": f"no such endpoint {path}"}

        body = self._body()
        fence = body.get("fence")
        epoch = body.get("epoch")
        epoch = int(epoch) if epoch is not None else None
        if path == "/lookup":
            entries = service.lookup(
                body.get("keys", []),
                now=body.get("now"),
                count_hits=bool(body.get("count_hits", True)),
            )
            return 200, {"entries": [e.to_dict() for e in entries]}
        if path == "/entries":
            entries = service.entries_on_se(body.get("se_keys", []))
            return 200, {"entries": [e.to_dict() for e in entries]}
        if path == "/put":
            seq = service.put_entries(
                body.get("entries", []), fence=fence, epoch=epoch
            )
            return 200, {"seq": seq, "epoch": service.epoch}
        if path == "/merge":
            seq = service.merge_entries(
                body.get("entries", []), fence=fence, epoch=epoch
            )
            return 200, {"seq": seq, "epoch": service.epoch}
        if path == "/stale":
            seq = service.mark_stale(
                body.get("keys", []), fence=fence, epoch=epoch
            )
            return 200, {"seq": seq, "epoch": service.epoch}
        if path == "/quality":
            seq = service.adjust_quality(
                body.get("adjust", []), fence=fence, epoch=epoch
            )
            return 200, {"seq": seq, "epoch": service.epoch}
        if path == "/gc":
            removed = service.gc(
                ttl=body.get("ttl"),
                min_quality=body.get("min_quality"),
                drop_stale=bool(body.get("drop_stale", True)),
                fence=fence,
                epoch=epoch,
            )
            return 200, {"removed": removed}
        if path == "/lease":
            token = service.acquire_lease(
                str(body.get("holder", "anonymous")),
                ttl=body.get("ttl"),
                epoch=epoch,
            )
            return 200, {"fence": token, "epoch": service.epoch}
        if path == "/lease/release":
            released = service.release_lease(
                int(body.get("fence", 0)), epoch=epoch
            )
            return 200, {"released": released, "epoch": service.epoch}
        if path == "/fleet/claim":
            share = service.plan_share(
                _fleet_workflow(body),
                night=str(body.get("night", "tonight")),
                client=str(body.get("client", "")),
                solver=str(body.get("solver", "greedy")),
                epoch=epoch,
            )
            return 200, share
        if path == "/promote":
            new_epoch = service.promote()
            tailer = getattr(self.server, "tailer", None)
            if tailer is not None:
                # stop tailing the old primary in the background; the
                # epoch fence would reject its stream anyway
                threading.Thread(target=tailer.stop, daemon=True).start()
            return 200, {"epoch": new_epoch, "role": service.role}
        if path == "/snapshot":
            service.snapshot()
            return 200, {"wal_seq": service.wal.last_seq}
        return 404, {"error": f"no such endpoint {path}"}


class _ServerCore:
    """State shared by the TCP and unix-socket server classes."""

    daemon_threads = True

    def init_core(
        self,
        service: CatalogService,
        metrics: MetricsRegistry | None,
        log_path: str | Path | None,
    ) -> None:
        self.service = service
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._log_path = Path(log_path) if log_path else None
        self._log_lock = threading.Lock()
        self.tailer = None  # ReplicationTailer when started as a standby
        self.snapshot_daemon = None
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    def request_began(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def request_ended(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait for in-flight requests to finish replying (SIGTERM path).

        Keep-alive connections idle between requests do not count -- only
        requests whose reply is not yet on the wire.  Returns ``False``
        if stragglers remained at the deadline (the shutdown proceeds
        anyway; their writes are WAL-durable or never acknowledged).
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if self._inflight <= 0:
                    return True
            time.sleep(0.02)
        with self._inflight_lock:
            return self._inflight <= 0

    def log(self, message: str) -> None:
        line = f"{time.strftime('%Y-%m-%dT%H:%M:%S')} {message}\n"
        if self._log_path is None:
            return
        with self._log_lock:
            with open(self._log_path, "a") as handle:
                handle.write(line)

    def stop_daemons(self) -> None:
        if self.tailer is not None:
            self.tailer.stop()
        if self.snapshot_daemon is not None:
            self.snapshot_daemon.stop()

    def shutdown_service(self) -> None:
        """Snapshot and close the store (a *graceful* stop; SIGKILL skips
        this, which is exactly what the WAL is for)."""
        self.stop_daemons()
        self.service.close()


class TcpCatalogServer(_ServerCore, ThreadingHTTPServer):
    """``repro-etl serve --listen host:port``."""


class UnixCatalogServer(
    _ServerCore, socketserver.ThreadingMixIn, socketserver.UnixStreamServer
):
    """``repro-etl serve --listen unix:///path.sock``."""

    allow_reuse_address = True

    def get_request(self):
        request, _ = self.socket.accept()
        return request, ("unix", 0)

    def server_bind(self):
        # a dead server's socket file blocks rebinding; it is garbage
        try:
            os.unlink(self.server_address)
        except OSError:
            pass
        super().server_bind()


def parse_listen(listen: str) -> tuple[str, object]:
    """``host:port`` or ``unix:///path.sock`` -> (kind, address).

    Malformed addresses raise :class:`PersistenceError` (which the CLI
    turns into a one-line exit 1): the host must be non-empty and the
    port numeric within 0..65535 (0 binds an ephemeral port).
    """
    raw = listen
    if listen.startswith("unix://"):
        path = listen[len("unix://"):]
        if not path:
            raise PersistenceError(f"empty unix socket path in {raw!r}")
        return "unix", path
    if listen.startswith("http://"):
        listen = listen[len("http://"):].rstrip("/")
    host, sep, port = listen.rpartition(":")
    if not sep or not port or not port.isdigit():
        raise PersistenceError(
            f"bad listen address {raw!r}; want host:port or unix:///path"
        )
    if not host:
        raise PersistenceError(
            f"bad listen address {raw!r}: empty host "
            f"(use 127.0.0.1:{port} or 0.0.0.0:{port})"
        )
    port_number = int(port)
    if port_number > 65535:
        raise PersistenceError(
            f"bad listen address {raw!r}: port {port_number} out of "
            "range 0-65535"
        )
    return "tcp", (host, port_number)


def make_server(
    listen: str,
    catalog_path: str | Path,
    *,
    wal_path: str | Path | None = None,
    metrics: MetricsRegistry | None = None,
    log_path: str | Path | None = None,
    snapshot_every: int | None = None,
    snapshot_interval: float | None = None,
    gc_interval: float | None = None,
    lease_ttl: float | None = None,
    fsync: bool = True,
    replicate_from: str | None = None,
    auto_promote_after: int | None = None,
    poll_interval: float | None = None,
    faults=None,
):
    """Build a ready-to-``serve_forever`` catalog server.

    With ``replicate_from`` the server starts life as a standby: its
    service refuses writes with a redirect to that URL, and a
    :class:`~repro.serve.replication.ReplicationTailer` thread tails the
    primary's WAL stream.  Every server also runs a
    :class:`~repro.serve.service.SnapshotDaemon` so snapshots and GC
    happen off the request path.
    """
    metrics = metrics if metrics is not None else MetricsRegistry()
    kwargs = {}
    if snapshot_every is not None:
        kwargs["snapshot_every"] = snapshot_every
    if lease_ttl is not None:
        kwargs["lease_ttl"] = lease_ttl
    if replicate_from:
        kwargs["role"] = "standby"
        kwargs["primary_url"] = replicate_from
    service = CatalogService(
        catalog_path, wal_path, metrics=metrics, fsync=fsync, **kwargs
    )
    kind, address = parse_listen(listen)
    if kind == "unix":
        server = UnixCatalogServer(address, CatalogRequestHandler)
    else:
        server = TcpCatalogServer(address, CatalogRequestHandler)
    server.init_core(service, metrics, log_path)
    interval = (
        DEFAULT_SNAPSHOT_INTERVAL if snapshot_interval is None else snapshot_interval
    )
    server.snapshot_daemon = SnapshotDaemon(
        service, interval=interval, gc_interval=gc_interval
    ).start()
    if replicate_from:
        from repro.serve.replication import ReplicationTailer

        tailer_kwargs = {"faults": faults, "metrics": metrics}
        if auto_promote_after is not None:
            tailer_kwargs["auto_promote_after"] = auto_promote_after
        if poll_interval is not None:
            tailer_kwargs["poll_interval"] = poll_interval
        server.tailer = ReplicationTailer(
            service, replicate_from, **tailer_kwargs
        ).start()
    server.log(
        f"serving catalog {catalog_path} on {listen} as {service.role}"
        + (f" of {replicate_from}" if replicate_from else "")
    )
    return server


class ServerThread:
    """An in-process server for tests: start, talk, stop (or kill)."""

    def __init__(self, listen: str, catalog_path: str | Path, **kwargs):
        self.server = make_server(listen, catalog_path, **kwargs)
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def url(self) -> str:
        if isinstance(self.server, UnixCatalogServer):
            return f"unix://{self.server.server_address}"
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.server.shutdown_service()

    def kill(self) -> None:
        """Stop *without* snapshotting -- the in-process stand-in for
        SIGKILL (recovery must come from the WAL alone)."""
        self.server.shutdown()
        self.server.server_close()
        # background threads die with a real SIGKILL too; stop_daemons
        # halts them without a snapshot (their stop paths never fold)
        self.server.stop_daemons()
        self.server.service.wal.close()

    def promote(self) -> int:
        """Promote this (standby) server's service; returns the epoch."""
        epoch = self.server.service.promote()
        if self.server.tailer is not None:
            self.server.tailer.stop()
        return epoch


def resolve_socket_family(url: str) -> tuple[int, object]:
    """Address family + connect argument for a catalog URL."""
    kind, address = parse_listen(url)
    if kind == "unix":
        return socket.AF_UNIX, address
    return socket.AF_INET, address


__all__ = [
    "CatalogRequestHandler",
    "ServerThread",
    "TcpCatalogServer",
    "UnixCatalogServer",
    "make_server",
    "parse_listen",
    "resolve_socket_family",
]
