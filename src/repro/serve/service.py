"""The catalog service: a crash-safe, concurrent statistics store.

This is the server's brain, factored free of any transport so the crash
and concurrency properties are testable in-process:

- **Durability.** Every mutation is appended to the
  :class:`~repro.serve.wal.WriteAheadLog` (fsync'd) *before* it touches
  memory and before the caller is acknowledged.  Startup loads the last
  snapshot and replays the log's suffix; an acknowledged write therefore
  survives ``SIGKILL`` at any instruction, and a torn tail (the one write
  that was never acknowledged) is discarded.

- **Write-behind snapshots.** Every ``snapshot_every`` applied mutations
  the in-memory state is written as a normal
  :class:`~repro.catalog.store.StatisticsCatalog` document (atomic
  rename) carrying the last absorbed WAL sequence, and the log is
  truncated.  Replay time is thereby bounded by ``snapshot_every``, not
  by the server's lifetime, and the snapshot file doubles as the local
  catalog a degraded client can fall back to.

- **Concurrency.** Entries live in hash-sharded dicts, one lock per
  shard: readers only contend with writers touching their shard.
  Mutations are serialized by a single write lock -- WAL order *is*
  memory order, so replay reconstructs exactly the state the live server
  had.

- **Lease fencing.** Writers that reconcile a night's run first acquire
  a lease and attach its fence token to every write.  Tokens are
  monotonic and WAL-persisted; a paused holder whose lease was taken
  over comes back with a stale token and every one of its writes is
  rejected (:class:`FenceError`) instead of clobbering the takeover's.

- **Fleet scheduling.** :meth:`plan_share` is the "what must I tap
  tonight?" endpoint: each client posts its workflow, the service solves
  its selection problem with everything the catalog (or an earlier
  client tonight) already covers entered at zero cost, claims the
  remainder for that client, and hands back the split.

- **Replication.** A service runs as a ``primary`` or a ``standby``.
  The primary keeps an in-memory tail of WAL records since the last
  snapshot and serves it through :meth:`wal_stream`; a standby replays
  the stream with :meth:`apply_replicated` (same sequence numbers, same
  single apply path), answering reads but refusing writes with
  :class:`NotPrimaryError` so clients are redirected.  Promotion is
  fenced by a monotonic *epoch* persisted in the WAL header: a promoted
  standby bumps it, and every mutation carrying a lower epoch -- i.e.
  writes from a resurrected stale primary's clients -- is rejected with
  :class:`EpochError` before it can corrupt entries (no split-brain).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import replace
from pathlib import Path
from zlib import crc32

from repro.catalog.store import (
    DEFAULT_MIN_QUALITY,
    DEFAULT_TTL,
    CatalogEntry,
    StatisticsCatalog,
)
from repro.core.persistence import FORMAT_VERSION, PersistenceError, atomic_write_json
from repro.serve.wal import WAL_FORMAT_VERSION, WriteAheadLog

#: shards of the in-memory entry map (per-shard read locks)
DEFAULT_SHARDS = 16

#: applied mutations between write-behind snapshots
DEFAULT_SNAPSHOT_EVERY = 256

#: seconds a writer lease lasts unless renewed
DEFAULT_LEASE_TTL = 60.0

#: seconds between background snapshot-daemon wakeups
DEFAULT_SNAPSHOT_INTERVAL = 30.0


class FenceError(PersistenceError):
    """A write carried a stale fence token: its lease was taken over."""


class EpochError(FenceError):
    """A write carried a stale promotion epoch: a standby was promoted.

    Subclasses :class:`FenceError` because it is the same shape of
    failure one level up -- a writer (here: a whole server's clientele)
    that lost ownership and must not be allowed to clobber the
    successor's state.
    """


class NotPrimaryError(PersistenceError):
    """A mutation reached a standby; it carries the primary to redirect to."""

    def __init__(self, primary: str = ""):
        self.primary = primary
        where = f"; the primary is {primary}" if primary else ""
        super().__init__(
            f"this catalog server is a read-only standby{where}: "
            "retry the write against the primary or promote this standby"
        )


class CatalogService:
    """Crash-safe, lease-fenced, sharded statistics-catalog state."""

    def __init__(
        self,
        path: str | Path,
        wal_path: str | Path | None = None,
        *,
        ttl: float = DEFAULT_TTL,
        min_quality: float = DEFAULT_MIN_QUALITY,
        shards: int = DEFAULT_SHARDS,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        fsync: bool = True,
        metrics=None,
        clock=time.time,
        role: str = "primary",
        primary_url: str = "",
    ):
        if role not in ("primary", "standby"):
            raise PersistenceError(
                f"bad catalog role {role!r}; want 'primary' or 'standby'"
            )
        self.path = Path(path)
        self.wal = WriteAheadLog(
            Path(wal_path) if wal_path is not None else Path(str(path) + ".wal"),
            fsync=fsync,
        )
        self.ttl = ttl
        self.min_quality = min_quality
        self.snapshot_every = snapshot_every
        self.lease_ttl = lease_ttl
        self.metrics = metrics
        self.clock = clock

        self._shards: list[dict[str, CatalogEntry]] = [
            {} for _ in range(max(1, shards))
        ]
        self._shard_locks = [threading.Lock() for _ in self._shards]
        self._write_lock = threading.Lock()

        self.fence = 0  # latest issued lease token (monotonic, WAL'd)
        self.lease_holder = ""
        self.lease_deadline = 0.0
        self.snapshot_seq = 0  # last WAL seq absorbed by the snapshot
        self._since_snapshot = 0
        #: per-night fleet claims: night -> statistic key -> claiming client
        self._claims: dict[str, dict[str, str]] = {}

        self.role = role
        self.primary_url = primary_url.rstrip("/") if primary_url else ""
        self.epoch = 1  # promotion epoch (monotonic, WAL-header persisted)
        #: WAL records since the last snapshot, kept for wal_stream()
        self._wal_tail: list[dict] = []
        #: set when snapshot_every mutations accumulated; the background
        #: snapshot daemon (not the request path) folds them into a snapshot
        self._snapshot_due = threading.Event()

        self._load()

    # ------------------------------------------------------------------
    # startup: snapshot + WAL replay
    # ------------------------------------------------------------------
    def _load(self) -> None:
        replayed = 0
        if self.path.exists():
            catalog = StatisticsCatalog.open(
                self.path, ttl=self.ttl, min_quality=self.min_quality
            )
            for key, entry in catalog.entries.items():
                self._shards[self._shard_index(key)][key] = entry
            # the snapshot's absorbed-seq rides as an extra top-level field
            # the plain catalog loader ignores
            try:
                doc = json.loads(self.path.read_text())
                self.snapshot_seq = int(doc.get("wal_seq", 0))
                self.epoch = max(self.epoch, int(doc.get("epoch", 1)))
                self.fence = max(self.fence, int(doc.get("fence", 0)))
                if doc.get("lease_holder"):
                    self.lease_holder = str(doc["lease_holder"])
                    self.lease_deadline = float(doc.get("lease_deadline", 0.0))
            except (OSError, ValueError):
                self.snapshot_seq = 0
        for record in self.wal.replay(after_seq=self.snapshot_seq):
            self._apply(record)
            self._wal_tail.append(record)
            replayed += 1
        # the WAL header may carry a higher epoch than the snapshot (the
        # promotion happened after the last snapshot was written)
        self.epoch = max(self.epoch, self.wal.epoch)
        self.replayed_records = replayed
        if self.metrics is not None:
            self.metrics.gauge(
                "catalog_server_entries", "entries held by the service"
            ).set(len(self))
            self.metrics.gauge(
                "catalog_epoch", "promotion epoch of this catalog server"
            ).set(self.epoch)
            if replayed:
                self.metrics.counter(
                    "catalog_server_wal_replayed_total",
                    "WAL records replayed at startup",
                ).inc(replayed)

    # ------------------------------------------------------------------
    # sharded reads
    # ------------------------------------------------------------------
    def _shard_index(self, key: str) -> int:
        return crc32(key.encode("utf-8")) % len(self._shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def get(self, key: str) -> CatalogEntry | None:
        index = self._shard_index(key)
        with self._shard_locks[index]:
            return self._shards[index].get(key)

    def lookup(
        self, keys, now: float | None = None, count_hits: bool = True
    ) -> list[CatalogEntry]:
        """The usable entries among ``keys`` (stale/expired never match)."""
        now = self.clock() if now is None else now
        out: list[CatalogEntry] = []
        for key in keys:
            index = self._shard_index(key)
            with self._shard_locks[index]:
                entry = self._shards[index].get(key)
                if entry is None or not entry.usable(now, self.ttl, self.min_quality):
                    continue
                if count_hits:
                    # hit counts are advisory telemetry, deliberately not
                    # WAL'd: losing them to a crash costs nothing
                    entry = replace(entry, hits=entry.hits + 1)
                    self._shards[index][key] = entry
                out.append(entry)
        return out

    def usable_keys(self, now: float | None = None) -> set[str]:
        now = self.clock() if now is None else now
        out: set[str] = set()
        for shard, lock in zip(self._shards, self._shard_locks):
            with lock:
                out.update(
                    key
                    for key, entry in shard.items()
                    if entry.usable(now, self.ttl, self.min_quality)
                )
        return out

    def entries_on_se(self, se_keys) -> list[CatalogEntry]:
        wanted = set(se_keys)
        out: list[CatalogEntry] = []
        for shard, lock in zip(self._shards, self._shard_locks):
            with lock:
                out.extend(
                    entry for entry in shard.values() if entry.se_key in wanted
                )
        return sorted(out, key=lambda e: e.key)

    def all_entries(self) -> list[CatalogEntry]:
        out: list[CatalogEntry] = []
        for shard, lock in zip(self._shards, self._shard_locks):
            with lock:
                out.extend(shard.values())
        return sorted(out, key=lambda e: e.key)

    # ------------------------------------------------------------------
    # leases
    # ------------------------------------------------------------------
    def acquire_lease(
        self, holder: str, ttl: float | None = None, epoch: int | None = None
    ) -> int:
        """Issue a fresh fence token; takes over an expired lease.

        A *live* lease held by someone else is not stolen -- the contender
        gets a :class:`FenceError` and retries after the TTL.  Every
        successful acquisition (including a renewal by the same holder)
        bumps the fence, which is what invalidates a paused predecessor.
        """
        ttl = self.lease_ttl if ttl is None else ttl
        with self._write_lock:
            self._check_writable()
            self._check_epoch(epoch)
            now = self.clock()
            if (
                self.lease_holder
                and self.lease_holder != holder
                and now < self.lease_deadline
            ):
                raise FenceError(
                    f"catalog lease held by {self.lease_holder!r} for another "
                    f"{self.lease_deadline - now:.0f}s"
                )
            fence = self.fence + 1
            deadline = now + ttl
            self._append(
                "lease", fence=fence, holder=holder, deadline=deadline
            )
            self.fence = fence
            self.lease_holder = holder
            self.lease_deadline = deadline
            return fence

    def release_lease(self, fence: int, epoch: int | None = None) -> bool:
        """Give the lease back after a completed save.

        Releasing with a stale token is a silent no-op -- the lease was
        already taken over, so there is nothing of this holder's left to
        release.  The fence counter itself never goes backwards.
        """
        with self._write_lock:
            self._check_writable()
            self._check_epoch(epoch)
            if fence != self.fence or not self.lease_holder:
                return False
            self._append("lease", fence=self.fence, holder="", deadline=0.0)
            self.lease_holder = ""
            self.lease_deadline = 0.0
            return True

    def _check_fence(self, fence: int | None) -> None:
        if fence is not None and fence != self.fence:
            raise FenceError(
                f"stale fence token {fence} (current {self.fence}): this "
                "writer's lease was taken over; re-acquire and retry"
            )

    def _check_writable(self) -> None:
        if self.role != "primary":
            raise NotPrimaryError(self.primary_url)

    def _check_epoch(self, epoch: int | None) -> None:
        """Epoch fencing, checked before anything else on every mutation.

        A *lower* client epoch means the client is stale (a standby was
        promoted since it last synced): it must refresh.  A *higher*
        client epoch means **this server** is the stale one -- it was
        SIGKILLed as primary, a standby took over, and it came back up
        still believing it leads.  Rejecting here is what prevents
        split-brain from corrupting entries.
        """
        if epoch is None or epoch == self.epoch:
            return
        if epoch > self.epoch:
            raise EpochError(
                f"this server's epoch {self.epoch} is behind the cluster "
                f"epoch {epoch}: a standby was promoted over it; this "
                "server is fenced and must resync before accepting writes"
            )
        raise EpochError(
            f"stale epoch {epoch} (current {self.epoch}): a standby was "
            "promoted since this writer last synced; refresh and retry"
        )

    # ------------------------------------------------------------------
    # mutations: WAL first, memory second, ack last
    # ------------------------------------------------------------------
    def _append(self, op: str, **fields) -> int:
        seq = self.wal.last_seq + 1
        self.wal.append(op, seq, **fields)
        self._wal_tail.append(
            {"v": WAL_FORMAT_VERSION, "seq": seq, "op": op, **fields}
        )
        if self.metrics is not None:
            self.metrics.counter(
                "catalog_server_wal_records_total", "durable WAL appends"
            ).inc(op=op)
        return seq

    def _mutate(
        self,
        op: str,
        fence: int | None = None,
        epoch: int | None = None,
        **fields,
    ) -> int:
        with self._write_lock:
            self._check_writable()
            self._check_epoch(epoch)
            self._check_fence(fence)
            seq = self._append(op, **fields)
            self._apply({"op": op, "seq": seq, **fields})
            self._since_snapshot += 1
            if self._since_snapshot >= self.snapshot_every:
                # snapshots happen off the request path: flag the backlog
                # and let the snapshot daemon (or an explicit caller) fold it
                self._snapshot_due.set()
            if self.metrics is not None:
                self.metrics.gauge(
                    "catalog_server_entries", "entries held by the service"
                ).set(len(self))
            return seq

    def put_entries(
        self, entry_docs, fence: int | None = None, epoch: int | None = None
    ) -> int:
        """Insert-or-replace whole entries (the reconcile write path)."""
        docs = [self._validated_entry(doc).to_dict() for doc in entry_docs]
        return self._mutate("put", fence=fence, epoch=epoch, entries=docs)

    def merge_entries(
        self, entry_docs, fence: int | None = None, epoch: int | None = None
    ) -> int:
        """Fold entries in, newer ``observed_at`` winning per key."""
        docs = [self._validated_entry(doc).to_dict() for doc in entry_docs]
        return self._mutate("merge", fence=fence, epoch=epoch, entries=docs)

    def mark_stale(
        self, keys, fence: int | None = None, epoch: int | None = None
    ) -> int:
        return self._mutate(
            "stale", fence=fence, epoch=epoch, keys=sorted(set(keys))
        )

    def adjust_quality(
        self, adjustments, fence: int | None = None, epoch: int | None = None
    ) -> int:
        """Blend prediction errors into quality scores; ``[[key, err]..]``."""
        pairs = [[str(key), float(err)] for key, err in adjustments]
        return self._mutate("quality", fence=fence, epoch=epoch, adjust=pairs)

    def gc(
        self,
        ttl: float | None = None,
        min_quality: float | None = None,
        drop_stale: bool = True,
        fence: int | None = None,
        epoch: int | None = None,
    ) -> int:
        """Drop expired/low-quality/stale entries; returns the count.

        The doomed set is computed up front and logged as an explicit
        ``delete`` record, so replay removes exactly the same keys no
        matter when the replaying process runs.
        """
        now = self.clock()
        ttl = self.ttl if ttl is None else ttl
        min_quality = self.min_quality if min_quality is None else min_quality
        doomed: list[str] = []
        for shard, lock in zip(self._shards, self._shard_locks):
            with lock:
                doomed.extend(
                    key
                    for key, entry in shard.items()
                    if entry.expired(now, ttl)
                    or entry.quality < min_quality
                    or (drop_stale and entry.stale)
                )
        if doomed:
            self._mutate("delete", fence=fence, epoch=epoch, keys=sorted(doomed))
        return len(doomed)

    @staticmethod
    def _validated_entry(doc) -> CatalogEntry:
        if isinstance(doc, CatalogEntry):
            return doc
        return CatalogEntry.from_dict(doc)

    # ------------------------------------------------------------------
    # the single apply path (live mutations and replay share it)
    # ------------------------------------------------------------------
    def _apply(self, record: dict) -> None:
        op = record.get("op")
        if op in ("put", "merge"):
            for doc in record.get("entries", ()):
                entry = CatalogEntry.from_dict(doc)
                index = self._shard_index(entry.key)
                with self._shard_locks[index]:
                    mine = self._shards[index].get(entry.key)
                    if (
                        op == "merge"
                        and mine is not None
                        and mine.observed_at >= entry.observed_at
                    ):
                        continue
                    self._shards[index][entry.key] = entry
        elif op == "stale":
            for key in record.get("keys", ()):
                index = self._shard_index(key)
                with self._shard_locks[index]:
                    entry = self._shards[index].get(key)
                    if entry is not None and not entry.stale:
                        self._shards[index][key] = replace(entry, stale=True)
        elif op == "quality":
            for key, rel_error in record.get("adjust", ()):
                index = self._shard_index(key)
                with self._shard_locks[index]:
                    entry = self._shards[index].get(key)
                    if entry is None:
                        continue
                    accuracy = max(0.0, 1.0 - min(float(rel_error), 1.0))
                    self._shards[index][key] = replace(
                        entry, quality=0.5 * entry.quality + 0.5 * accuracy
                    )
        elif op == "delete":
            for key in record.get("keys", ()):
                index = self._shard_index(key)
                with self._shard_locks[index]:
                    self._shards[index].pop(key, None)
        elif op == "lease":
            self.fence = max(self.fence, int(record.get("fence", 0)))
            self.lease_holder = str(record.get("holder", ""))
            self.lease_deadline = float(record.get("deadline", 0.0))
        else:
            raise PersistenceError(f"WAL record with unknown op {op!r}")

    # ------------------------------------------------------------------
    # replication: stream the WAL out, apply a streamed WAL in
    # ------------------------------------------------------------------
    def wal_stream(self, from_seq: int) -> dict:
        """One page of the replication stream, from a standby's cursor.

        If the cursor predates the last snapshot the requested records
        were already folded away, so the answer is a *reset*: the full
        snapshot document the standby must load before tailing again.
        Otherwise it is the (possibly empty) list of tail records with
        ``seq > from_seq``.  Either shape carries the primary's epoch and
        head sequence so the standby can fence and measure its lag.
        """
        with self._write_lock:
            head = {
                "epoch": self.epoch,
                "seq": self.wal.last_seq,
                "role": self.role,
            }
            if from_seq < self.snapshot_seq:
                return {"reset": True, "snapshot": self.to_dict(), **head}
            records = [
                record
                for record in self._wal_tail
                if record.get("seq", 0) > from_seq
            ]
            return {"records": records, **head}

    def apply_replicated(self, records, epoch: int | None = None) -> int:
        """Apply streamed WAL records, preserving the primary's sequencing.

        The standby's WAL ends up byte-for-byte equivalent to the
        primary's suffix: same ops, same sequence numbers, through the
        same single :meth:`_apply` path.  Records at or below our cursor
        are skipped (the stream may overlap after a reconnect).
        """
        applied = 0
        with self._write_lock:
            self._adopt_epoch_locked(epoch)
            for record in records:
                seq = record.get("seq", 0)
                if not isinstance(seq, int) or seq <= self.wal.last_seq:
                    continue
                op = record.get("op")
                fields = {
                    key: value
                    for key, value in record.items()
                    if key not in ("v", "seq", "op")
                }
                self.wal.append(op, seq, **fields)
                self._apply(record)
                self._wal_tail.append(record)
                applied += 1
                self._since_snapshot += 1
            if self._since_snapshot >= self.snapshot_every:
                self._snapshot_due.set()
            if applied and self.metrics is not None:
                self.metrics.counter(
                    "catalog_server_replicated_records_total",
                    "WAL records applied from the replication stream",
                ).inc(applied)
                self.metrics.gauge(
                    "catalog_server_entries", "entries held by the service"
                ).set(len(self))
        return applied

    def load_snapshot(self, doc: dict, epoch: int | None = None) -> None:
        """Bootstrap (or re-bootstrap) this standby from a reset snapshot.

        Replaces all in-memory state with the snapshot, persists it
        locally, and fast-forwards the WAL cursor to the snapshot's
        absorbed sequence so tailing resumes exactly where the snapshot
        ends.
        """
        with self._write_lock:
            self._adopt_epoch_locked(epoch)
            for shard, lock in zip(self._shards, self._shard_locks):
                with lock:
                    shard.clear()
            for entry_doc in doc.get("entries", ()):
                entry = CatalogEntry.from_dict(entry_doc)
                self._shards[self._shard_index(entry.key)][entry.key] = entry
            self.fence = max(self.fence, int(doc.get("fence", 0)))
            self.lease_holder = str(doc.get("lease_holder", ""))
            self.lease_deadline = float(doc.get("lease_deadline", 0.0))
            self.snapshot_seq = int(doc.get("wal_seq", 0))
            self.wal.last_seq = max(self.wal.last_seq, self.snapshot_seq)
            atomic_write_json(self.to_dict(), self.path)
            self.wal.truncate()
            self._wal_tail = []
            self._since_snapshot = 0
            self._snapshot_due.clear()

    def promote(self) -> int:
        """Make this standby the primary, fenced by a bumped epoch.

        The epoch is durably written to the WAL header *before* the role
        flips, so even a crash mid-promotion leaves a server that outranks
        the primary it replaced.  Promoting a primary is a no-op (returns
        the current epoch) so the call is idempotent.
        """
        with self._write_lock:
            if self.role != "primary":
                self.epoch += 1
                self.wal.write_epoch(self.epoch)
                self.role = "primary"
                self.primary_url = ""
                if self.metrics is not None:
                    self.metrics.gauge(
                        "catalog_epoch", "promotion epoch of this catalog server"
                    ).set(self.epoch)
                    self.metrics.counter(
                        "catalog_server_promotions_total",
                        "standby-to-primary promotions",
                    ).inc()
            return self.epoch

    def _adopt_epoch_locked(self, epoch: int | None) -> None:
        """Track the upstream's epoch while tailing it.

        A *higher* upstream epoch is adopted (the upstream was itself
        promoted).  A *lower* one means this server was promoted over the
        upstream -- the stream is stale and must not be applied.
        """
        if epoch is None or epoch == self.epoch:
            return
        if epoch < self.epoch:
            raise EpochError(
                f"replication stream carries stale epoch {epoch} "
                f"(ours is {self.epoch}): the upstream was superseded"
            )
        self.epoch = epoch
        self.wal.write_epoch(epoch)
        if self.metrics is not None:
            self.metrics.gauge(
                "catalog_epoch", "promotion epoch of this catalog server"
            ).set(self.epoch)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        entries = self.all_entries()
        return {
            "format_version": FORMAT_VERSION,
            "kind": "statistics-catalog",
            "entries": [entry.to_dict() for entry in entries],
            "wal_seq": self.wal.last_seq,
            "epoch": self.epoch,
            "fence": self.fence,
            "lease_holder": self.lease_holder,
            "lease_deadline": self.lease_deadline,
        }

    @property
    def snapshot_due(self) -> bool:
        """True when ``snapshot_every`` mutations accumulated unfolded."""
        return self._snapshot_due.is_set()

    def maybe_snapshot(self) -> bool:
        """Snapshot only if one is due; the snapshot daemon's fast path."""
        if not self._snapshot_due.is_set():
            return False
        self.snapshot()
        return True

    def snapshot(self) -> None:
        """Persist memory as a plain catalog document, truncate the WAL."""
        with self._write_lock:
            self._snapshot_locked()

    def _snapshot_locked(self) -> None:
        doc = self.to_dict()
        atomic_write_json(doc, self.path)
        self.snapshot_seq = doc["wal_seq"]
        self.wal.truncate()
        self._wal_tail = []
        # the lease fence must survive the truncation: re-seed the fresh
        # log so a post-snapshot restart still rejects pre-snapshot tokens.
        # Only the primary appends -- a standby's WAL sequence numbers must
        # mirror the primary's exactly, and its fence rides the snapshot.
        if self.fence and self.role == "primary":
            self._append(
                "lease",
                fence=self.fence,
                holder=self.lease_holder,
                deadline=self.lease_deadline,
            )
        self._since_snapshot = 0
        self._snapshot_due.clear()
        if self.metrics is not None:
            self.metrics.counter(
                "catalog_server_snapshots_total", "write-behind snapshots"
            ).inc()

    def close(self) -> None:
        self.snapshot()
        self.wal.close()

    # ------------------------------------------------------------------
    # fleet scheduling: hand each client its zero-cost share
    # ------------------------------------------------------------------
    def plan_share(
        self,
        workflow,
        night: str,
        client: str = "",
        solver: str = "greedy",
        epoch: int | None = None,
    ) -> dict:
        """One client's share of tonight's fleet observation plan.

        Statistics the catalog already covers, or that an earlier client
        claimed tonight, enter this workflow's selection problem at zero
        cost (the Section 6.2 mechanism); whatever the solver still wants
        observed is *claimed* for this client, so the next caller sees it
        as free.  Each shared statistic is therefore tapped exactly once
        per night across the fleet.
        """
        from repro.algebra.blocks import analyze
        from repro.catalog.signatures import SignatureError, WorkflowSigner
        from repro.core.costs import CostModel
        from repro.core.generator import GeneratorOptions, generate_css
        from repro.core.greedy import solve_greedy
        from repro.core.ilp import solve_ilp
        from repro.core.selection import build_problem

        analysis = analyze(workflow)
        css = generate_css(analysis, GeneratorOptions())
        signer = WorkflowSigner(analysis)
        keys = {}
        for stat in css.all_statistics:
            try:
                keys[stat] = signer.statistic_key(stat)
            except SignatureError:
                continue
        catalog_keys = self.usable_keys()
        with self._write_lock:
            # claims mutate shared fleet state: primary-only, epoch-fenced
            self._check_writable()
            self._check_epoch(epoch)
            claimed = self._claims.setdefault(night, {})
            free = {
                stat
                for stat, key in keys.items()
                if key in claimed or key in catalog_keys
            }
            solve = solve_greedy if solver == "greedy" else solve_ilp
            selection = solve(
                build_problem(
                    css, CostModel(workflow.catalog), free_statistics=free
                )
            )
            observe: list[dict] = []
            shared: dict[str, str] = {}
            name = client or workflow.name
            for stat in selection.observed:
                key = keys.get(stat)
                if key is not None and key in claimed:
                    shared[key] = claimed[key]
                    continue
                if key is not None and key in catalog_keys:
                    shared[key] = "catalog"
                    continue
                observe.append({"key": key, "repr": repr(stat)})
                if key is not None:
                    claimed[key] = name
        return {
            "night": night,
            "client": name,
            "observe": observe,
            "shared": shared,
            "selection_cost": selection.total_cost,
        }

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The health document ``GET /healthz`` returns."""
        return {
            "ok": True,
            "entries": len(self),
            "usable": len(self.usable_keys()),
            "wal_seq": self.wal.last_seq,
            "snapshot_seq": self.snapshot_seq,
            "fence": self.fence,
            "lease_holder": self.lease_holder,
            "nights": sorted(self._claims),
            "role": self.role,
            "epoch": self.epoch,
            "primary": self.primary_url,
        }


class SnapshotDaemon:
    """Background thread folding snapshots (and optional GC) off requests.

    The request path only flags that a snapshot is *due*
    (``snapshot_every`` mutations accumulated); this daemon wakes on that
    flag or every ``interval`` seconds -- whichever comes first -- and
    does the actual fold, so no client ever pays the snapshot's
    write-and-truncate latency.  With ``gc_interval`` set, expired and
    low-quality entries are also collected here (primary only: deletions
    replicate to standbys through the WAL stream like any mutation).
    """

    def __init__(
        self,
        service: CatalogService,
        interval: float = DEFAULT_SNAPSHOT_INTERVAL,
        gc_interval: float | None = None,
        clock=time.monotonic,
    ):
        self.service = service
        self.interval = max(0.01, float(interval))
        self.gc_interval = gc_interval
        self.clock = clock
        self.snapshots = 0
        self.collected = 0
        self._last_gc = clock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="catalog-snapshot-daemon", daemon=True
        )

    def start(self) -> "SnapshotDaemon":
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.service._snapshot_due.wait(self.interval)
            if self._stop.is_set():
                return
            self.run_once()

    def run_once(self) -> None:
        """One daemon tick: GC if its interval elapsed, then fold."""
        try:
            if (
                self.gc_interval is not None
                and self.service.role == "primary"
                and self.clock() - self._last_gc >= self.gc_interval
            ):
                self.collected += self.service.gc(drop_stale=False)
                self._last_gc = self.clock()
            if self.service._since_snapshot:
                self.service.snapshot()
                self.snapshots += 1
        except PersistenceError:  # pragma: no cover - e.g. racing a close
            pass

    def stop(self) -> None:
        self._stop.set()
        self.service._snapshot_due.set()  # wake the wait immediately
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
        if not self.service._since_snapshot:
            self.service._snapshot_due.clear()  # undo the wake-up poke


__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_SHARDS",
    "DEFAULT_SNAPSHOT_EVERY",
    "DEFAULT_SNAPSHOT_INTERVAL",
    "CatalogService",
    "EpochError",
    "FenceError",
    "NotPrimaryError",
    "SnapshotDaemon",
]
