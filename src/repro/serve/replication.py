"""The standby side of catalog replication: a WAL stream tailer.

A standby server owns a normal :class:`~repro.serve.service.CatalogService`
(read-only by role) plus one :class:`ReplicationTailer` thread.  The
tailer polls the primary's ``GET /wal/stream?from=<cursor>`` where the
cursor is the standby's own WAL head: the primary answers either the
tail records past the cursor or a *reset* snapshot when the cursor
predates its last fold.  Records are applied through the service's
single apply path with the primary's own sequence numbers, so the
standby's WAL is byte-equivalent to the primary's suffix and the cursor
survives standby restarts for free.

Lag is the distance between the primary's head sequence and the
standby's -- exported as the ``catalog_replication_lag_records`` gauge.

When the primary stops answering for ``auto_promote_after`` consecutive
polls the tailer promotes its service (epoch bump, fenced in the WAL
header) and stops: the standby is now the primary the surviving clients
fail over to.  Set ``auto_promote_after=0`` to leave promotion entirely
to operators / clients (``POST /promote``).
"""

from __future__ import annotations

import json
import threading
import time
from http.client import HTTPConnection, HTTPException

from repro.core.persistence import PersistenceError
from repro.serve.service import CatalogService, EpochError

#: seconds between stream polls
DEFAULT_POLL_INTERVAL = 0.25

#: consecutive failed polls before the standby promotes itself (0 = never)
DEFAULT_AUTO_PROMOTE_AFTER = 8


class ReplicationError(PersistenceError):
    """A stream poll failed (connection, HTTP status, or bad payload)."""


def _split_url(url: str) -> tuple[str, object]:
    """A catalog URL -> ("unix", path) or ("tcp", (host, port))."""
    from repro.serve.server import parse_listen

    return parse_listen(url)


def open_stream_connection(url: str, timeout: float = 5.0):
    """An HTTP connection to a primary, over TCP or a unix socket."""
    kind, address = _split_url(url)
    if kind == "unix":
        from repro.serve.client import _UnixHTTPConnection

        return _UnixHTTPConnection(address, timeout=timeout)
    host, port = address
    return HTTPConnection(host, port, timeout=timeout)


class ReplicationTailer:
    """Daemon thread tailing a primary's WAL stream into a local service."""

    def __init__(
        self,
        service: CatalogService,
        primary_url: str,
        *,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        timeout: float = 5.0,
        auto_promote_after: int = DEFAULT_AUTO_PROMOTE_AFTER,
        faults=None,
        metrics=None,
        sleep=time.sleep,
    ):
        self.service = service
        self.primary_url = primary_url.rstrip("/")
        self.poll_interval = max(0.005, float(poll_interval))
        self.timeout = timeout
        self.auto_promote_after = max(0, int(auto_promote_after))
        self.metrics = metrics
        self.sleep = sleep
        from repro.engine.faults import as_injector

        self._injector = as_injector(faults)
        self._conn = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="catalog-replication-tailer", daemon=True
        )
        self.polls = 0  # successful polls
        self.failures = 0  # consecutive failed polls (reset on success)
        self.applied = 0  # records applied since start
        self.resets = 0  # snapshot bootstraps
        self.upstream_seq = 0  # primary head at the last successful poll
        self.lag = 0  # upstream_seq - our head, at the last poll
        self.promoted = False
        self.stopped_reason = ""

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connection(self):
        if self._conn is None:
            self._conn = open_stream_connection(self.primary_url, self.timeout)
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - close cannot matter
                pass
            self._conn = None

    def _fetch(self, path: str) -> dict:
        conn = self._connection()
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, HTTPException) as exc:
            self._drop_connection()
            raise ReplicationError(
                f"stream poll of {self.primary_url} failed: {exc}"
            ) from exc
        if response.status != 200:
            raise ReplicationError(
                f"stream poll of {self.primary_url} answered "
                f"{response.status}: {raw[:200]!r}"
            )
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ReplicationError(
                f"stream poll of {self.primary_url} returned bad JSON"
            ) from exc
        if not isinstance(doc, dict):
            raise ReplicationError("stream payload must be a JSON object")
        return doc

    # ------------------------------------------------------------------
    # the poll loop
    # ------------------------------------------------------------------
    def poll_once(self) -> int:
        """One stream poll: fetch past our cursor, apply, measure lag.

        Returns the number of records applied.  Raises
        :class:`ReplicationError` on transport trouble and
        :class:`~repro.serve.service.EpochError` when the upstream's
        epoch is behind ours (we were promoted; the stream is stale).
        """
        if self._injector is not None:
            # a replication-stall fault sleeps here: the stream survives,
            # lag grows, and the gauge shows it
            self._injector.on_replication(self.primary_url)
        cursor = self.service.wal.last_seq
        doc = self._fetch(f"/wal/stream?from={cursor}")
        epoch = doc.get("epoch")
        applied = 0
        if doc.get("reset"):
            self.service.load_snapshot(doc.get("snapshot", {}), epoch=epoch)
            self.resets += 1
            applied = self.service.wal.last_seq - cursor
        else:
            applied = self.service.apply_replicated(
                doc.get("records", ()), epoch=epoch
            )
        self.applied += max(0, applied)
        self.upstream_seq = int(doc.get("seq", self.service.wal.last_seq))
        self.lag = max(0, self.upstream_seq - self.service.wal.last_seq)
        self.polls += 1
        self.failures = 0
        if self.metrics is not None:
            self.metrics.gauge(
                "catalog_replication_lag_records",
                "records the standby is behind its primary",
            ).set(self.lag)
        return max(0, applied)

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.poll_once()
            except EpochError as exc:
                # our epoch outranks the stream: we were promoted (or the
                # upstream was superseded); tailing it would roll us back
                self.stopped_reason = str(exc)
                return
            except ReplicationError as exc:
                self.failures += 1
                self.stopped_reason = str(exc)
                if (
                    self.auto_promote_after
                    and self.failures >= self.auto_promote_after
                    and self.service.role != "primary"
                ):
                    self.service.promote()
                    self.promoted = True
                    self.stopped_reason = (
                        f"promoted after {self.failures} failed polls "
                        f"of {self.primary_url}"
                    )
                    return
            self._stop.wait(self.poll_interval)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReplicationTailer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
        self._drop_connection()

    def wait_caught_up(self, head_seq: int, timeout: float = 5.0) -> bool:
        """Block until our WAL head reaches ``head_seq`` (tests, drains)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.service.wal.last_seq >= head_seq:
                return True
            time.sleep(self.poll_interval / 4)
        return self.service.wal.last_seq >= head_seq


__all__ = [
    "DEFAULT_AUTO_PROMOTE_AFTER",
    "DEFAULT_POLL_INTERVAL",
    "ReplicationError",
    "ReplicationTailer",
    "open_stream_connection",
]
