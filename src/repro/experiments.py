"""The Section 7 experiment sweeps as a library.

Each function regenerates one table or figure from the paper's evaluation
over the 30-workflow suite and returns plain rows; the benchmark harness
(`benchmarks/`) asserts their shapes and persists them, and the CLI
(`python -m repro.cli experiments ...`) prints them interactively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.algebra.blocks import BlockAnalysis, analyze
from repro.baselines.payg import workflow_executions, workflow_lower_bound
from repro.core.costs import CostModel
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.estimation.bootstrap import bootstrap_se_sizes
from repro.workloads import suite
from repro.workloads.characteristics import (
    paper_reference,
    summarize,
    synthetic_population,
)
from repro.workloads.tpcdi import WorkflowCase


@dataclass
class SuiteContext:
    """Pre-built workflows and analyses for the whole suite."""

    cases: list[WorkflowCase]
    workflows: list
    analyses: list[BlockAnalysis]

    @classmethod
    def build(cls, numbers: Sequence[int] | None = None) -> "SuiteContext":
        cases = [
            c for c in suite() if numbers is None or c.number in set(numbers)
        ]
        workflows = [c.build() for c in cases]
        analyses = [analyze(w) for w in workflows]
        return cls(cases, workflows, analyses)

    def __iter__(self):
        return iter(zip(self.cases, self.workflows, self.analyses))


def data_characteristics_rows() -> tuple[list[str], list[list]]:
    """The Section 7 data-characteristics table, ours next to the paper's."""
    cards, uvs = synthetic_population(n_relations=60, seed=7)
    ours = summarize(cards, uvs)
    paper = {r.stat: r for r in paper_reference()}
    rows = [
        [
            r.stat,
            f"{r.card:.0f}",
            f"{paper[r.stat].card}",
            f"{r.uv:.0f}",
            f"{paper[r.stat].uv}",
        ]
        for r in ours
    ]
    return ["Stat", "Card (ours)", "Card (paper)", "UV (ours)", "UV (paper)"], rows


def fig9_rows(context: SuiteContext) -> tuple[list[str], list[list]]:
    """Figure 9: #SE and #CSS without/with union-division per workflow."""
    rows = []
    for case, _workflow, analysis in context:
        with_ud = generate_css(analysis, GeneratorOptions(fk_rules=False))
        without = generate_css(
            analysis, GeneratorOptions(union_division=False, fk_rules=False)
        )
        rows.append(
            [
                case.number,
                with_ud.counts()["required"],
                without.counts()["css"],
                with_ud.counts()["css"],
            ]
        )
    return ["wf", "#SE", "#CSS (no UD)", "#CSS (UD)"], rows


def fig10_rows(
    context: SuiteContext, time_limit: float = 15.0
) -> tuple[list[str], list[list]]:
    """Figure 10: identification time per workflow (milliseconds)."""
    rows = []
    for case, workflow, analysis in context:
        t0 = time.perf_counter()
        catalog_ud = generate_css(analysis, GeneratorOptions(fk_rules=False))
        t_gen_ud = time.perf_counter() - t0
        t0 = time.perf_counter()
        generate_css(
            analysis, GeneratorOptions(union_division=False, fk_rules=False)
        )
        t_gen_noud = time.perf_counter() - t0
        cards, dv = case.characteristics(scale=1.0)
        cost_model = CostModel(
            workflow.catalog, se_sizes=bootstrap_se_sizes(analysis, cards, dv)
        )
        t0 = time.perf_counter()
        result = solve_ilp(
            build_problem(catalog_ud, cost_model), time_limit=time_limit
        )
        t_solve = time.perf_counter() - t0
        rows.append(
            [
                case.number,
                round(t_gen_noud * 1e3, 2),
                round(t_gen_ud * 1e3, 2),
                round(t_solve * 1e3, 1),
                result.method,
            ]
        )
    return (
        ["wf", "CSS gen no-UD", "CSS gen UD", "solver", "solver kind"],
        rows,
    )


def fig11_rows(
    context: SuiteContext, time_limit: float = 15.0
) -> tuple[list[str], list[list]]:
    """Figure 11: optimal observation memory without/with union-division."""
    rows = []
    for case, workflow, analysis in context:
        cards, dv = case.characteristics(scale=1.0)
        cost_model = CostModel(
            workflow.catalog, se_sizes=bootstrap_se_sizes(analysis, cards, dv)
        )
        costs = {}
        observed = {}
        for label, options in (
            ("noud", GeneratorOptions(union_division=False, fk_rules=False)),
            ("ud", GeneratorOptions(fk_rules=False)),
        ):
            catalog = generate_css(analysis, options)
            problem = build_problem(catalog, cost_model)
            result = solve_ilp(problem, time_limit=time_limit)
            costs[label] = result.total_cost
            observed[label] = (problem, set(result.observed))
        if costs["ud"] > costs["noud"]:
            # a time-limited incumbent can trail the no-UD optimum, which is
            # always feasible for the UD problem -- fall back to it
            ud_problem, _ = observed["ud"]
            indexes = {ud_problem.index[s] for s in observed["noud"][1]}
            if ud_problem.is_sufficient(indexes):
                costs["ud"] = costs["noud"]
        rows.append(
            [
                case.number,
                costs["noud"],
                costs["ud"],
                "union-division" if costs["ud"] < costs["noud"] else "",
            ]
        )
    return ["wf", "no union-division", "union-division", "UD chosen?"], rows


def fig12_rows(context: SuiteContext) -> tuple[list[str], list[list]]:
    """Figure 12: executions to cover all SEs under pay-as-you-go."""
    rows = []
    for case, _workflow, analysis in context:
        rows.append(
            [
                case.number,
                workflow_lower_bound(analysis),
                workflow_executions(analysis, semantics=False),
                workflow_executions(analysis),
                workflow_executions(analysis, use_fk=True),
                1,
            ]
        )
    return (
        [
            "wf",
            "min executions",
            "found schedule",
            "found (join-graph semantics)",
            "found (FK metadata)",
            "ours",
        ],
        rows,
    )


def format_rows(header: list[str], rows: list[list]) -> str:
    """Plain-text table rendering shared by the CLI."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
