"""Batched execution of compiled block programs.

One :class:`CompiledBlockRunner` executes one lowered block over column
*batches* -- a ``(columns dict, row count)`` pair.  Whole-column profiles
(columnar, vectorized) run a single batch per input; the streaming
profile slices inputs into row chunks, so joins probe and instrumentation
accumulates incrementally just like the per-tuple interpreter, only a
few thousand rows at a time.

Equivalence with the interpreters is the contract here:

- every plan point the interpreters note is recorded with the same row
  count, and every tap sees the same rows (the
  :class:`ObservationBuffer` speaks the taps' column-batch protocol:
  accumulate for additive/streaming taps, replace for table-level taps);
- raw feed points are claim-guarded under additive taps exactly like the
  streaming interpreter, so shared sources count once per run;
- sizes flush at block end and additive points are only marked streamed
  then, so a failed block's statistics read as *missing*, not zeros
  (faults fire at attempt start, before any accumulation);
- reject links carry the same rows, and the streaming profile's
  canonical column order.

The speed comes from never interpreting the plan per row: fused filter
runs compose selection vectors and materialize survivors once, joins
probe with the build dict directly and -- when every probe hits a unique
build row -- pass the left columns through untouched.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.algebra.blocks import Block
from repro.algebra.expressions import AnySE, RejectSE
from repro.engine.table import Table, TableError

from repro.engine.compile.ir import (
    BlockProgram,
    ChainIR,
    CompiledProfile,
    FusedStep,
    JoinIR,
    PlanIR,
)

_MISSING = object()

Batch = "tuple[dict[str, list], int]"


def _col(cols: dict, attr: str):
    try:
        return cols[attr]
    except KeyError:
        raise TableError(
            f"no column {attr!r}; available: {tuple(cols)}"
        ) from None


def _concat(parts: "list[Batch]") -> "Batch":
    """Concatenate batches; a single batch passes through untouched."""
    if len(parts) == 1:
        return parts[0]
    first = parts[0][0]
    out: dict[str, list] = {a: [] for a in first}
    n = 0
    for cols, cn in parts:
        n += cn
        for a, acc in out.items():
            col = cols[a]
            acc.extend(col if isinstance(col, list) else list(col))
    return out, n


def _keys_of(cols: dict, key: tuple, engine) -> list:
    """Join-key probe values: raw values for single keys, tuples else."""
    if len(key) == 1:
        return engine.aslist(_col(cols, key[0]))
    return list(zip(*(engine.aslist(_col(cols, a)) for a in key)))


def _build_side(cols: dict, key: tuple, engine) -> tuple[dict, bool]:
    """Hash-build one side; detects unique keys for the fast probe path.

    Stored values are row indexes (unique) or index lists (duplicates);
    never ``None``, so ``build.get`` doubles as the miss test.
    """
    build: dict = {}
    unique = True
    for idx, kv in enumerate(_keys_of(cols, key, engine)):
        cur = build.get(kv)
        if cur is None and kv not in build:
            build[kv] = idx
        elif isinstance(cur, list):
            cur.append(idx)
            unique = False
        else:
            build[kv] = [cur, idx]
            unique = False
    if not unique:
        for kv, cur in build.items():
            if not isinstance(cur, list):
                build[kv] = [cur]
    return build, unique


class ObservationBuffer:
    """Batched plan-point observation with interpreter-equal semantics."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.taps = ctx.taps
        self.additive = bool(getattr(ctx.taps, "additive", False))
        self.counts: dict[AnySE, int] = {}
        self._attr_cache: dict[AnySE, tuple] = {}
        #: non-additive (replace) taps buffer value columns until flush
        self._pending: dict[AnySE, dict[str, list]] = {}
        self._rejects: list[RejectSE] = []

    def value_attrs(self, se: AnySE) -> tuple:
        got = self._attr_cache.get(se, _MISSING)
        if got is _MISSING:
            got = self.taps.value_attrs(se) if self.taps.wants(se) else ()
            self._attr_cache[se] = got
        return got

    def claim(self, se: AnySE) -> bool:
        """Claim a shared raw point (additive taps only, like streaming)."""
        if not self.additive:
            return True
        ctx = self.ctx
        with ctx.lock:
            claimed = ctx.state.setdefault("claimed_points", set())
            if se in claimed:
                return False
            claimed.add(se)
            return True

    # ------------------------------------------------------------------
    def record(self, se: AnySE, n: int, columns: Optional[dict]) -> None:
        self.counts[se] = self.counts.get(se, 0) + n
        if not self.taps.wants(se):
            return
        if self.additive:
            self.taps.observe_columns(se, n, columns)
        elif columns:
            pending = self._pending.setdefault(se, {})
            for attr, col in columns.items():
                acc = pending.setdefault(attr, [])
                acc.extend(col if isinstance(col, list) else list(col))

    def add(self, se: AnySE, n: int, cols: dict) -> None:
        attrs = self.value_attrs(se)
        columns = (
            {a: cols[a] for a in attrs if a in cols} if attrs else None
        )
        self.record(se, n, columns)

    def add_selected(self, se: AnySE, n: int, base: dict, sel, engine) -> None:
        """Observe a mid-filter-run point without materializing it: value
        columns (if any are tapped) gather through the selection vector."""
        attrs = self.value_attrs(se)
        columns = None
        if attrs:
            if sel is None:
                columns = {a: base[a] for a in attrs if a in base}
            else:
                idx = engine.index(sel)
                columns = {
                    a: engine.gather(base[a], idx)
                    for a in attrs
                    if a in base
                }
        self.record(se, n, columns)

    def add_reject(
        self, rej: RejectSE, cols: dict, attr_order: Optional[tuple]
    ) -> None:
        if attr_order is not None:
            cols = {a: _col(cols, a) for a in attr_order}
        table = Table.wrap(
            {
                a: (c if isinstance(c, list) else list(c))
                for a, c in cols.items()
            }
        )
        ctx = self.ctx
        with ctx.lock:
            ctx.run.rejects[rej] = table
            ctx.run.se_sizes[rej] = table.num_rows
        if self.taps.wants(rej):
            self.taps.observe_columns(rej, table.num_rows, table.columns)
        self._rejects.append(rej)
        if ctx.tracer is not None and ctx.tracer.enabled:
            ctx.trace_point(rej, table.num_rows, reject=True)

    def flush(self) -> None:
        """Publish sizes (and buffered replace-mode taps) at block end."""
        ctx = self.ctx
        with ctx.lock:
            ctx.run.se_sizes.update(self.counts)
        if self.additive:
            for se in self.counts:
                self.taps.mark_streamed(se)
            for rej in self._rejects:
                self.taps.mark_streamed(rej)
        else:
            for se, n in self.counts.items():
                if self.taps.wants(se):
                    self.taps.observe_columns(se, n, self._pending.get(se))
        ctx.trace_sizes(self.counts)


class CompiledBlockRunner:
    """Executes one compiled block program inside a run context."""

    def __init__(
        self,
        program: BlockProgram,
        block: Block,
        profile: CompiledProfile,
        engine,
    ):
        self.program = program
        self.block = block
        self.profile = profile
        self.engine = engine

    # ------------------------------------------------------------------
    def execute(self, ctx) -> Table:
        program = self.program
        obs = ObservationBuffer(ctx)
        wanted = ctx.taps.reject_requests() | set(
            self.block.materialized_rejects
        )
        parts: list = []
        for cols, n in self._exec(program.root, ctx, obs, wanted):
            cols, n = self._segment(cols, n, program.post, obs)
            parts.append((cols, n))
        out_cols, _ = _concat(parts)
        if self.profile.canonical_output:
            if self.block.post_steps:
                order = tuple(self.block.post_steps[-1].out_attrs)
            else:
                order = tuple(self.block.se_attrs(program.root_se))
            out_cols = {a: _col(out_cols, a) for a in order}
        table = Table.wrap(dict(out_cols))
        obs.flush()
        return table

    # ------------------------------------------------------------------
    def _exec(
        self, node: PlanIR, ctx, obs: ObservationBuffer, wanted: set
    ) -> Iterator["Batch"]:
        if isinstance(node, ChainIR):
            return self._chain(node, ctx, obs)
        return self._join(node, ctx, obs, wanted)

    def _chain(
        self, chain: ChainIR, ctx, obs: ObservationBuffer
    ) -> Iterator["Batch"]:
        table = ctx.run.env[chain.base_name]
        cols = table.columns
        n = table.num_rows
        count_raw = obs.claim(chain.raw_se)
        chunk = self.profile.chunk_rows
        if chunk is None or n <= chunk:
            spans = ((0, n),)
        else:
            spans = tuple(
                (lo, min(lo + chunk, n)) for lo in range(0, n, chunk)
            )
        for lo, hi in spans:
            if lo == 0 and hi == n:
                batch = dict(cols)
            else:
                batch = {a: col[lo:hi] for a, col in cols.items()}
            if count_raw:
                obs.add(chain.raw_se, hi - lo, batch)
            yield self._segment(batch, hi - lo, chain.steps, obs)

    # ------------------------------------------------------------------
    def _segment(
        self,
        cols: dict,
        n: int,
        steps: tuple[FusedStep, ...],
        obs: ObservationBuffer,
    ) -> "Batch":
        """Run one fused segment over a batch.

        Consecutive filters form a *run*: selection vectors compose and
        only the predicate columns are touched until the run ends, at
        which point every surviving column materializes in one gather.
        """
        engine = self.engine
        i = 0
        total = len(steps)
        while i < total:
            step = steps[i]
            if step.kind == "filter":
                base = cols
                sel = None
                while i < total and steps[i].kind == "filter":
                    st = steps[i]
                    fn = st.fn
                    col = _col(base, st.attrs[0])
                    if sel is None:
                        values = engine.aslist(col)
                    else:
                        values = engine.aslist(
                            engine.gather(col, engine.index(sel))
                        )
                    keep = [j for j, v in enumerate(values) if fn(v)]
                    if len(keep) != n:
                        sel = (
                            keep
                            if sel is None
                            else engine.compose(sel, keep)
                        )
                        n = len(keep)
                    if st.se is not None:
                        obs.add_selected(st.se, n, base, sel, engine)
                    i += 1
                if sel is not None:
                    idx = engine.index(sel)
                    cols = {
                        a: engine.gather(c, idx) for a, c in base.items()
                    }
                else:
                    cols = base
                continue
            if step.kind == "transform":
                if len(step.attrs) == 1:
                    src = engine.aslist(_col(cols, step.attrs[0]))
                    fn = step.fn
                    values = [fn(v) for v in src]
                else:
                    srcs = [
                        engine.aslist(_col(cols, a)) for a in step.attrs
                    ]
                    fn = step.fn
                    values = [fn(vals) for vals in zip(*srcs)]
                cols = dict(cols)
                cols[step.out_attr] = values
            else:  # project
                cols = {a: _col(cols, a) for a in step.attrs}
            if step.se is not None:
                obs.add(step.se, n, cols)
            i += 1
        return cols, n

    # ------------------------------------------------------------------
    def _join(
        self, jir: JoinIR, ctx, obs: ObservationBuffer, wanted: set
    ) -> Iterator["Batch"]:
        engine = self.engine
        rcols, rn = _concat(list(self._exec(jir.right, ctx, obs, wanted)))
        build, unique = _build_side(rcols, jir.key, engine)

        want_l = jir.rej_left in wanted
        want_r = jir.rej_right in wanted
        track = want_l or want_r
        matched_right: set[int] = set()
        rej_left_parts: list = []
        left_attrs: Optional[tuple] = None

        for lcols, ln in self._exec(jir.left, ctx, obs, wanted):
            if left_attrs is None:
                left_attrs = tuple(lcols)
            probe = _keys_of(lcols, jir.key, engine)
            if unique and not track:
                ris = list(map(build.get, probe))
                if None not in ris:
                    # every probe hit a unique build row: the left side
                    # passes through untouched, only right extras gather
                    out = dict(lcols)
                    ridx = engine.index(ris)
                    for a, col in rcols.items():
                        if a not in out:
                            out[a] = engine.gather(col, ridx)
                    on = ln
                else:
                    li, ri = engine.split_hits(ris)
                    out = self._gather_pair(lcols, rcols, li, ri)
                    on = len(li)
            else:
                li_idx: list[int] = []
                ri_idx: list[int] = []
                rejl: list[int] = []
                if unique:
                    for li, kv in enumerate(probe):
                        ri = build.get(kv)
                        if ri is None:
                            if want_l:
                                rejl.append(li)
                            continue
                        li_idx.append(li)
                        ri_idx.append(ri)
                        if want_r:
                            matched_right.add(ri)
                else:
                    for li, kv in enumerate(probe):
                        bucket = build.get(kv)
                        if bucket is None:
                            if want_l:
                                rejl.append(li)
                            continue
                        li_idx.extend([li] * len(bucket))
                        ri_idx.extend(bucket)
                        if want_r:
                            matched_right.update(bucket)
                out = self._gather_pair(lcols, rcols, li_idx, ri_idx)
                on = len(li_idx)
                if want_l and rejl:
                    idx = engine.index(rejl)
                    rej_left_parts.append(
                        (
                            {
                                a: engine.gather(c, idx)
                                for a, c in lcols.items()
                            },
                            len(rejl),
                        )
                    )
            out, on = self._segment(out, on, jir.floating, obs)
            obs.add(jir.se, on, out)
            yield out, on

        canonical = self.profile.canonical_output
        if want_l:
            if rej_left_parts:
                cols, _ = _concat(rej_left_parts)
            else:
                cols = {a: [] for a in (left_attrs or ())}
            order = (
                tuple(self.block.se_attrs(jir.rej_left.source))
                if canonical
                else None
            )
            obs.add_reject(jir.rej_left, cols, order)
        if want_r:
            unmatched = [i for i in range(rn) if i not in matched_right]
            idx = engine.index(unmatched)
            cols = {a: engine.gather(c, idx) for a, c in rcols.items()}
            order = (
                tuple(self.block.se_attrs(jir.rej_right.source))
                if canonical
                else None
            )
            obs.add_reject(jir.rej_right, cols, order)

    def _gather_pair(self, lcols: dict, rcols: dict, li, ri) -> dict:
        engine = self.engine
        li = engine.index(li)
        ri = engine.index(ri)
        out = {a: engine.gather(c, li) for a, c in lcols.items()}
        for a, col in rcols.items():
            if a not in out:
                out[a] = engine.gather(col, ri)
        return out


def execute_compiled_block(program, block, profile, engine, ctx) -> Table:
    """Convenience one-shot entry point (tests, ad-hoc callers)."""
    return CompiledBlockRunner(program, block, profile, engine).execute(ctx)


__all__ = [
    "CompiledBlockRunner",
    "ObservationBuffer",
    "execute_compiled_block",
]
