"""The physical-operator IR compiled plans execute.

Lowering (:mod:`repro.engine.compile.lower`) turns one optimizable block's
algebra -- stage chains, a join tree, floating operators, post-steps --
into a small tree of IR nodes whose operator payloads are *pre-resolved*:
predicate and UDF callables are looked up once at compile time, attribute
tuples are frozen, and every observation point the interpreters would
fire (``ctx.note`` per plan point) is recorded on the node that produces
it.  The runtime (:mod:`repro.engine.compile.runtime`) then walks this IR
over column batches with zero per-row plan interpretation.

The IR is deliberately tiny:

- :class:`FusedStep` -- one unary operator inside a fused segment
  (an anchored chain, a join's floating tail, or the block's post-steps);
- :class:`ChainIR` -- a block input's whole stage chain, fused;
- :class:`JoinIR` -- one hash join plus the floating operators the
  columnar interpreter would apply at that node;
- :class:`BlockProgram` -- one block's executable program plus the
  metadata the cache needs (transitive source dependencies);
- :class:`CompiledPlan` -- the per-run bundle of block programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.algebra.expressions import RejectSE, SubExpression


@dataclass(frozen=True)
class FusedStep:
    """One unary operator inside a fused segment.

    ``se`` is the observation point *after* this step fires (a stage SE
    for chain/post steps), or ``None`` for floating operators, which the
    interpreters never observe individually.
    """

    kind: str  # "filter" | "transform" | "project"
    fn: Optional[Callable]
    attrs: tuple[str, ...]
    out_attr: Optional[str]  # transform output column
    se: Optional[SubExpression]


@dataclass(frozen=True)
class ChainIR:
    """A block input's anchored stage chain, fused into one segment."""

    input_name: str
    base_name: str
    raw_se: SubExpression
    steps: tuple[FusedStep, ...]


@dataclass(frozen=True)
class JoinIR:
    """One equi-join node plus its floating-operator tail."""

    left: "PlanIR"
    right: "PlanIR"
    key: tuple[str, ...]
    se: SubExpression
    rej_left: RejectSE
    rej_right: RejectSE
    floating: tuple[FusedStep, ...]


PlanIR = Union[ChainIR, JoinIR]


@dataclass(frozen=True)
class BlockProgram:
    """One optimizable block, lowered and ready to execute."""

    block_name: str
    output_name: str
    root: PlanIR
    root_se: SubExpression
    post: tuple[FusedStep, ...]
    #: every observation point the program fires, in execution order
    obs_ses: tuple[SubExpression, ...]
    #: raw feed SEs (claim-guarded under additive taps, like streaming)
    raw_ses: tuple[SubExpression, ...]
    #: transitive *raw source* names feeding this block -- the plan
    #: cache invalidates on schema drift against any of these
    sources: frozenset[str]
    #: operators fused into segments (chains + floating + post)
    fused_ops: int


@dataclass
class CompiledPlan:
    """Everything one run needs to execute every block compiled."""

    backend: str
    chunk_rows: Optional[int]
    programs: dict[str, BlockProgram] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def fused_ops(self) -> int:
        return sum(p.fused_ops for p in self.programs.values())

    def get(self, block_name: str) -> Optional[BlockProgram]:
        return self.programs.get(block_name)


@dataclass(frozen=True)
class CompiledProfile:
    """How a backend wants its compiled plans executed.

    ``chunk_rows`` turns whole-column execution into batched execution
    over row chunks (the streaming backend's mode); ``gather`` picks the
    gather engine rung (``"auto"`` climbs the numba -> numpy -> Python
    ladder, ``"python"`` pins the reference rung);
    ``canonical_output`` reorders block outputs and reject tables to the
    streaming interpreter's canonical (sorted) attribute order so the
    compiled backend is column-order-identical to its interpreter.
    """

    chunk_rows: Optional[int] = None
    gather: str = "auto"  # "auto" | "python"
    canonical_output: bool = False


__all__ = [
    "BlockProgram",
    "ChainIR",
    "CompiledPlan",
    "CompiledProfile",
    "FusedStep",
    "JoinIR",
    "PlanIR",
]
