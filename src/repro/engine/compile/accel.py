"""Acceleration ladder for fused kernels: numba -> numpy -> pure Python.

Compiled plans move rows with *gathers* (index-based column
materialization) instead of per-row dispatch.  This module supplies the
gather engine behind them, degrading gracefully with whatever the host
has installed:

- **numba** (when importable): a jitted index-composition kernel for
  fused filter runs -- the only loop hot enough to deserve it;
- **numpy** (when importable): object-dtype fancy indexing for gathers
  and selection-vector composition;
- **pure Python**: list comprehensions, always available.

Nothing here is installed on demand; missing rungs are skipped at import
time and :func:`accel_backend` reports whichever rung is active.
"""

from __future__ import annotations

from typing import Optional

try:  # pragma: no cover - exercised indirectly on hosts with numpy
    import numpy as _np
except Exception:  # pragma: no cover - numpy is in the base image
    _np = None

_compose_jit = None
try:  # pragma: no cover - numba is optional and absent from CI images
    import numba as _numba

    if _np is not None:

        @_numba.njit(cache=False)
        def _compose_jit(outer, inner):  # pragma: no cover
            out = _np.empty(inner.shape[0], dtype=_np.intp)
            for i in range(inner.shape[0]):
                out[i] = outer[inner[i]]
            return out

except Exception:  # pragma: no cover
    _numba = None
    _compose_jit = None


#: below this row count numpy conversion overhead beats its gather win
_MIN_NUMPY_GATHER = 64


def accel_backend() -> str:
    """Which rung of the fallback ladder this host runs fused kernels on."""
    if _compose_jit is not None:
        return "numba"
    if _np is not None:
        return "numpy"
    return "python"


class PythonGatherEngine:
    """Reference rung: plain lists end to end."""

    name = "python"

    def index(self, sel):
        """Normalize a selection vector for :meth:`gather`."""
        return sel

    def gather(self, column, index):
        if isinstance(column, list):
            return [column[i] for i in index]
        data = list(column)
        return [data[i] for i in index]

    def aslist(self, column):
        """A list view of a column for per-value loops."""
        if isinstance(column, list):
            return column
        return list(column)

    def compose(self, outer, inner):
        """``outer`` then ``inner``: absolute indexes of a nested selection."""
        return [outer[i] for i in inner]

    def split_hits(self, ris):
        """Split probe results into (left indexes, right indexes of hits)."""
        li = [i for i, r in enumerate(ris) if r is not None]
        ri = [r for r in ris if r is not None]
        return li, ri


class NumpyGatherEngine(PythonGatherEngine):
    """Object-dtype numpy gathers with an id-keyed array cache.

    Columns are immutable for the duration of a block run, so caching
    the ndarray view by ``id(column)`` lets every gather after the first
    skip the list->array conversion (the same trick the vectorized
    interpreter kernels use).
    """

    name = "numpy"

    def __init__(self):
        self._arrays: dict[int, object] = {}

    def _as_array(self, column):
        if isinstance(column, _np.ndarray):
            return column
        key = id(column)
        entry = self._arrays.get(key)
        if entry is None or entry[0] is not column:
            arr = _np.empty(len(column), dtype=object)
            arr[:] = column
            # keep the source alive so its id cannot be recycled
            self._arrays[key] = (column, arr)
            return arr
        return entry[1]

    def index(self, sel):
        if isinstance(sel, _np.ndarray):
            return sel
        if len(sel) < _MIN_NUMPY_GATHER:
            return sel
        return _np.asarray(sel, dtype=_np.intp)

    def gather(self, column, index):
        if len(index) == 0:
            return []
        if not isinstance(index, _np.ndarray):
            return PythonGatherEngine.gather(self, column, index)
        return self._as_array(column)[index]

    def aslist(self, column):
        if isinstance(column, _np.ndarray):
            return column.tolist()
        return column if isinstance(column, list) else list(column)

    def compose(self, outer, inner):
        n = len(inner)
        if n < _MIN_NUMPY_GATHER:
            return [outer[i] for i in inner]
        outer_arr = (
            outer
            if isinstance(outer, _np.ndarray)
            else _np.asarray(outer, dtype=_np.intp)
        )
        inner_arr = (
            inner
            if isinstance(inner, _np.ndarray)
            else _np.asarray(inner, dtype=_np.intp)
        )
        if _compose_jit is not None:
            return _compose_jit(outer_arr, inner_arr)
        return outer_arr[inner_arr]

    def split_hits(self, ris):
        n = len(ris)
        if n < _MIN_NUMPY_GATHER:
            return PythonGatherEngine.split_hits(self, ris)
        arr = _np.empty(n, dtype=object)
        arr[:] = ris
        mask = _np.not_equal(arr, None)
        li = _np.nonzero(mask)[0]
        ri = arr[mask].astype(_np.intp)
        return li, ri


def make_engine(kind: str = "auto"):
    """Build a gather engine: ``"python"`` pins the reference rung,
    ``"auto"`` takes the best available."""
    if kind == "python" or _np is None:
        return PythonGatherEngine()
    return NumpyGatherEngine()


def numpy_module() -> Optional[object]:
    """The imported numpy module, or None on hosts without it."""
    return _np


__all__ = [
    "NumpyGatherEngine",
    "PythonGatherEngine",
    "accel_backend",
    "make_engine",
    "numpy_module",
]
