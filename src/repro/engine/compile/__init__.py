"""Plan compilation: lowering, fusion, and caching of physical plans.

The interpreters in :mod:`repro.engine` re-walk the logical DAG on every
run.  This package compiles each optimizable block once -- lowering the
algebra to a physical-operator IR, fusing unary-operator chains into
whole-column kernels on a numba -> numpy -> pure-Python fallback ladder
-- and caches the result keyed by :class:`~repro.catalog.signatures.
WorkflowSigner` signatures, so warm runs skip compilation entirely.
Schema-drift events and contract changes invalidate affected entries.

``REPRO_COMPILE=0`` (or ``run --no-compile`` / ``compile=False``)
disables the whole layer and falls back to the interpreters.
"""

from __future__ import annotations

import os

from repro.engine.compile.accel import accel_backend, make_engine
from repro.engine.compile.cache import PlanCache
from repro.engine.compile.ir import (
    BlockProgram,
    ChainIR,
    CompiledPlan,
    CompiledProfile,
    FusedStep,
    JoinIR,
)
from repro.engine.compile.lower import (
    CompileError,
    block_source_deps,
    compile_blocks,
    lower_block,
)
from repro.engine.compile.runtime import (
    CompiledBlockRunner,
    ObservationBuffer,
    execute_compiled_block,
)

_OFF = {"0", "false", "off", "no"}


def compile_enabled_default() -> bool:
    """Process-wide default for plan compilation (``REPRO_COMPILE``)."""
    return os.environ.get("REPRO_COMPILE", "1").strip().lower() not in _OFF


__all__ = [
    "BlockProgram",
    "ChainIR",
    "CompileError",
    "CompiledBlockRunner",
    "CompiledPlan",
    "CompiledProfile",
    "FusedStep",
    "JoinIR",
    "ObservationBuffer",
    "PlanCache",
    "accel_backend",
    "block_source_deps",
    "compile_blocks",
    "compile_enabled_default",
    "execute_compiled_block",
    "lower_block",
    "make_engine",
]
