"""Lowering: algebra blocks + join trees -> physical-operator IR.

One :class:`~repro.engine.compile.ir.BlockProgram` is produced per
optimizable block.  Lowering mirrors the columnar interpreter's execution
order *exactly* -- same stage chains, same post-order join walk, same
floating-operator placement (first join node, in declaration order, whose
SE covers the anchor), same reject SEs -- so a compiled run fires the
identical observation points with identical contents.

The fusion happening here is structural: each input's stage chain, each
join's floating tail, and the block's post-steps become *fused segments*
(tuples of :class:`~repro.engine.compile.ir.FusedStep` with their
operator callables pre-resolved), which the runtime executes over whole
column batches with composed selection vectors instead of per-step table
materialization.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.blocks import Block, BlockAnalysis, Step
from repro.algebra.expressions import RejectSE, SubExpression
from repro.algebra.plans import Leaf, PlanTree, leaves as _tree_leaves
from repro.engine.table import TableError

from repro.engine.compile.ir import (
    BlockProgram,
    ChainIR,
    CompiledPlan,
    CompiledProfile,
    FusedStep,
    JoinIR,
    PlanIR,
)


class CompileError(TableError):
    """Raised when a block cannot be lowered to the physical IR."""


def _fused(step: Step, se: Optional[SubExpression]) -> FusedStep:
    """Pre-resolve one anchored step's callable into a fused step."""
    node = step.node
    if step.kind == "filter":
        fn = node.predicate.fn
        out_attr = None
    elif step.kind == "transform":
        fn = node.udf.fn
        out_attr = step.result_attr if step.result_attr else step.attrs[0]
    elif step.kind == "project":
        fn = None
        out_attr = None
    else:  # pragma: no cover - analysis only emits the three kinds
        raise CompileError(f"unknown step kind {step.kind!r}")
    return FusedStep(
        kind=step.kind,
        fn=fn,
        attrs=tuple(step.attrs),
        out_attr=out_attr,
        se=se,
    )


def lower_block(block: Block, tree: PlanTree) -> BlockProgram:
    """Lower one block under the given join tree."""
    if {leaf.name for leaf in _tree_leaves(tree)} != set(block.inputs):
        raise CompileError(
            f"plan tree for {block.name} does not cover its inputs"
        )

    obs_ses: list[SubExpression] = []
    raw_ses: list[SubExpression] = []
    applied: set[int] = set()
    fused_ops = 0

    def chain_of(leaf: Leaf) -> ChainIR:
        nonlocal fused_ops
        inp = block.inputs[leaf.name]
        stage_names = inp.stage_names()
        raw_se = SubExpression.of(stage_names[0])
        steps = tuple(
            _fused(step, SubExpression.of(stage))
            for step, stage in zip(inp.steps, stage_names[1:])
        )
        fused_ops += len(steps)
        raw_ses.append(raw_se)
        obs_ses.append(raw_se)
        obs_ses.extend(s.se for s in steps)
        return ChainIR(leaf.name, inp.base_name, raw_se, steps)

    def build(node: PlanTree) -> PlanIR:
        nonlocal fused_ops
        if isinstance(node, Leaf):
            return chain_of(node)
        left = build(node.left)
        right = build(node.right)
        key = tuple(node.key)
        rej_key = key[0] if len(key) == 1 else key
        floating = []
        for idx, op in enumerate(block.floating):
            if idx in applied or not (op.anchor <= node.se.relations):
                continue
            floating.append(_fused(op.step, None))
            applied.add(idx)
        fused_ops += len(floating)
        obs_ses.append(node.se)
        return JoinIR(
            left=left,
            right=right,
            key=key,
            se=node.se,
            rej_left=RejectSE(node.left.se, rej_key, node.right.se),
            rej_right=RejectSE(node.right.se, rej_key, node.left.se),
            floating=tuple(floating),
        )

    root = build(tree)
    post = tuple(
        _fused(step, se)
        for step, se in zip(block.post_steps, block.post_stage_ses())
    )
    fused_ops += len(post)
    obs_ses.extend(s.se for s in post)

    return BlockProgram(
        block_name=block.name,
        output_name=block.output_name,
        root=root,
        root_se=tree.se,
        post=post,
        obs_ses=tuple(obs_ses),
        raw_ses=tuple(raw_ses),
        sources=frozenset(),  # filled in by compile_blocks
        fused_ops=fused_ops,
    )


def block_source_deps(
    analysis: BlockAnalysis,
    block: Block,
    _memo: Optional[dict] = None,
) -> frozenset[str]:
    """Transitive *raw source* names feeding a block.

    Block inputs are either raw sources (``upstream is None``) or another
    block's boundary output; the walk follows upstream links until it
    bottoms out at sources.  Schema-drift and contract-change
    invalidation use this set: an event on any of these sources makes the
    block's cached program suspect.
    """
    memo = _memo if _memo is not None else {}
    cached = memo.get(block.name)
    if cached is not None:
        return cached
    memo[block.name] = frozenset()  # cycle guard; analysis DAGs are acyclic
    deps: set[str] = set()
    for inp in block.inputs.values():
        if inp.upstream is None:
            deps.add(inp.base_name)
        else:
            deps |= block_source_deps(
                analysis, analysis.block(inp.upstream.block_name), memo
            )
    result = frozenset(deps)
    memo[block.name] = result
    return result


def compile_blocks(
    analysis: BlockAnalysis,
    trees: Optional[dict[str, PlanTree]] = None,
    *,
    backend: str = "columnar",
    profile: Optional[CompiledProfile] = None,
    cache=None,
    context_tokens: Optional[dict[str, str]] = None,
) -> CompiledPlan:
    """Compile every block of the analysis, consulting ``cache`` if given.

    ``context_tokens`` maps source names to fingerprints of their active
    contracts; they are folded into cache keys so a contract change is a
    cache miss rather than a silent reuse.
    """
    from dataclasses import replace as _replace

    profile = profile or CompiledProfile()
    trees = trees or {}
    tokens = context_tokens or {}
    programs: dict[str, BlockProgram] = {}
    hits = misses = 0
    signer = cache.signer_for(analysis) if cache is not None else None
    memo: dict = {}
    for block in analysis.blocks:
        tree = trees.get(block.name, block.initial_tree)
        deps = block_source_deps(analysis, block, memo)
        program = None
        key = None
        if cache is not None:
            key = cache.block_key(
                signer, block, tree, backend, profile, deps, tokens
            )
            program = cache.lookup(key)
        if program is None:
            misses += 1
            program = _replace(lower_block(block, tree), sources=deps)
            if cache is not None:
                cache.store(key, program)
        else:
            hits += 1
        programs[block.name] = program
    return CompiledPlan(
        backend=backend,
        chunk_rows=profile.chunk_rows,
        programs=programs,
        cache_hits=hits,
        cache_misses=misses,
    )


__all__ = [
    "CompileError",
    "block_source_deps",
    "compile_blocks",
    "lower_block",
]
