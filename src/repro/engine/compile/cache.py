"""Signature-keyed cache of compiled block programs.

Keys are built from the existing :class:`~repro.catalog.signatures.
WorkflowSigner` canonical forms, so they survive re-analysis: a warm run
of the same workflow (same block content, same join tree, same backend
execution profile, same source contracts) skips lowering entirely, while
any semantic change -- a different tree chosen by the optimizer, an
edited stage chain, a contract revision -- lands on a fresh key.

Schema drift is handled by *invalidation* rather than keying: a
:class:`~repro.quality.SchemaDriftEvent` means the source's runtime shape
no longer matches what the program was compiled against, so
``invalidate_source`` evicts every cached program whose transitive source
set contains the drifted source (the executor calls it before consulting
the cache).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.algebra.blocks import Block
from repro.algebra.expressions import SubExpression
from repro.algebra.plans import Leaf, PlanTree
from repro.catalog.signatures import WorkflowSigner, digest

from repro.engine.compile.ir import BlockProgram, CompiledProfile


def _tree_sig(signer: WorkflowSigner, node: PlanTree):
    """Canonical join-tree document; leaf feeds use SE signatures."""
    if isinstance(node, Leaf):
        return signer.se_signature(SubExpression.of(node.name))
    return {
        "j": [_tree_sig(signer, node.left), _tree_sig(signer, node.right)],
        "k": list(node.key),
    }


class PlanCache:
    """A bounded LRU of compiled block programs, safe for shared use."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._entries: "OrderedDict[str, BlockProgram]" = OrderedDict()
        self._lock = threading.Lock()
        self._signer: Optional[tuple] = None  # (analysis, signer)
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def signer_for(self, analysis) -> WorkflowSigner:
        """A signer for this analysis object (single-slot memo: repeated
        runs of the same pipeline reuse it; re-analyzed copies rebuild)."""
        memo = self._signer
        if memo is not None and memo[0] is analysis:
            return memo[1]
        signer = WorkflowSigner(analysis)
        self._signer = (analysis, signer)
        return signer

    def block_key(
        self,
        signer: WorkflowSigner,
        block: Block,
        tree: PlanTree,
        backend: str,
        profile: CompiledProfile,
        sources: frozenset[str],
        context_tokens: dict[str, str],
    ) -> str:
        """Cache key for one block's compiled program."""
        doc = {
            "v": 1,
            "out": signer.block_output_signature(block),
            "tree": _tree_sig(signer, tree),
            "rejects": sorted(
                signer.se_key(rej) for rej in block.materialized_rejects
            ),
            "backend": backend,
            "chunk": profile.chunk_rows,
            "gather": profile.gather,
            "canon": profile.canonical_output,
            "ctx": sorted(
                [src, context_tokens[src]]
                for src in sources
                if src in context_tokens
            ),
        }
        return digest(doc)

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[BlockProgram]:
        with self._lock:
            program = self._entries.get(key)
            if program is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return program

    def store(self, key: str, program: BlockProgram) -> None:
        with self._lock:
            self._entries[key] = program
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate_source(self, source: str) -> int:
        """Evict every program transitively fed by ``source``."""
        with self._lock:
            stale = [
                key
                for key, program in self._entries.items()
                if source in program.sources
            ]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


__all__ = ["PlanCache"]
