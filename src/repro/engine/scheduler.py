"""Block scheduling over the analysis DAG, with fault-tolerant execution.

Block analysis (Section 3.2.1) cuts a workflow into optimizable blocks
joined by boundary operators.  The resulting dependency structure is a DAG
over environment names: each block consumes its input feeds and provides
its output record-set, each boundary consumes one feed and provides one.
The executors used to walk that DAG with an inlined readiness loop; this
module extracts the walk so it can also run *in parallel* -- independent
blocks (different sources, different branches of a multi-target flow)
execute concurrently on a thread pool, which is the seam later
multi-process and distributed schedulers plug into.

The paper's premise makes fault tolerance non-optional: ETL sources (flat
files, foreign DBMSs) are outside the engine's control and fail mid-run in
production.  A nightly observe-and-optimize cycle that aborts on the first
block error loses every statistic already gathered.  The scheduler
therefore supports an optional :class:`RetryPolicy`: transient errors are
retried with exponential backoff and jitter, a per-attempt deadline turns
hung blocks into timeouts, and a task that ultimately fails is recorded as
a structured :class:`RunFailure` -- its dependents are skipped, every
independent task still runs, and the caller receives a
:class:`ScheduleResult` instead of a torn-down wave.

Entry points:

- :func:`topological_waves` -- a pure analysis of the task DAG into
  execution waves (every task in wave *i* depends only on waves ``< i``);
- :func:`classify_error` -- transient-vs-permanent triage for worker
  exceptions (duck-typed on a ``transient`` attribute, so the fault
  harness and real I/O errors classify uniformly);
- :class:`ParallelScheduler` -- executes a task list respecting the
  dependencies; ``max_workers <= 1`` degrades to the deterministic serial
  walk, ``max_workers > 1`` uses ``concurrent.futures`` with greedy
  dispatch (a task starts the moment its inputs exist, not when its wave
  starts).  Without a policy, worker exceptions propagate unchanged.

Tracing: ``execute`` accepts an optional
:class:`~repro.obs.trace.Tracer`.  When enabled, every task gets a span
(kind from ``Task.kind``) annotated with its outcome, attempt count and
failure details, plus a ``retry`` point per failed attempt -- the span
is the thread-local parent while the task function runs, so per-operator
points emitted inside a block land under it.  With ``tracer=None``
(the default) the scheduler's hot path is exactly the untraced walk.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence


class SchedulerError(RuntimeError):
    """Raised when the task graph cannot be executed (cycle / missing feed)."""


class BlockTimeout(RuntimeError):
    """An attempt exceeded the policy's per-block deadline."""

    transient = True  # a hung source may answer on the next attempt


#: exception types retried without an explicit ``transient`` marker --
#: the classic flaky-source failure modes of Section 1's external DBMSs
TRANSIENT_ERROR_TYPES = (
    TimeoutError,
    ConnectionError,
    InterruptedError,
    BrokenPipeError,
)


def classify_error(exc: BaseException) -> str:
    """``"transient"`` or ``"permanent"`` triage for a worker exception.

    An exception may self-classify through a boolean ``transient``
    attribute (the fault harness' :class:`~repro.engine.faults.TransientFault`
    and :class:`~repro.engine.faults.PermanentFault` do); otherwise common
    flaky-I/O types are transient and everything else -- bad data, bugs,
    schema mismatches -- is permanent, because re-running deterministic
    code over the same input cannot heal it.
    """
    marker = getattr(exc, "transient", None)
    if isinstance(marker, bool):
        return "transient" if marker else "permanent"
    return "transient" if isinstance(exc, TRANSIENT_ERROR_TYPES) else "permanent"


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler handles failing attempts.

    ``max_retries`` counts *re*-tries: a task gets ``1 + max_retries``
    attempts before its failure is recorded.  Backoff between attempts is
    exponential (``base_delay * 2^n`` capped at ``max_delay``) with a
    deterministic seeded jitter so concurrent retries of different blocks
    do not stampede a recovering source in lockstep.  ``block_timeout``
    bounds each attempt's wall time; a timed-out attempt counts as
    transient (the worker thread is abandoned, so timed-out block
    functions must be side-effect-safe, which ours are: a block publishes
    its output only on success).
    """

    max_retries: int = 0
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    block_timeout: float | None = None
    seed: int = 0
    classify: Callable[[BaseException], str] = classify_error
    sleep: Callable[[float], None] = time.sleep

    def backoff(self, retry_index: int, rng: random.Random) -> float:
        """Delay before retry ``retry_index`` (0-based), jittered."""
        delay = min(self.base_delay * (2.0**retry_index), self.max_delay)
        return delay * (1.0 + self.jitter * rng.random())

    def rng_for(self, task_name: str) -> random.Random:
        """Per-task RNG: jitter is deterministic regardless of how the
        scheduler interleaves concurrent tasks."""
        return random.Random(f"{self.seed}:{task_name}")


@dataclass(frozen=True)
class RunFailure:
    """Structured record of one task that did not complete.

    ``kind`` is ``"permanent"`` (non-retryable error), ``"transient"``
    (retryable but the retry budget ran out), ``"timeout"`` (the final
    attempt hit the deadline), ``"skipped"`` (a requirement's producer
    failed, listed in ``missing``) or ``"pool-exhausted"`` (the worker
    pool refused the task -- it was shut down, typically because the
    process is tearing down mid-run).
    """

    task: str
    kind: str
    error: str
    error_type: str
    attempts: int
    elapsed: float
    missing: tuple[str, ...] = ()

    def describe(self) -> str:
        if self.kind == "skipped":
            return f"{self.task}: skipped (failed upstream: {', '.join(self.missing)})"
        return (
            f"{self.task}: {self.kind} after {self.attempts} attempt(s) "
            f"[{self.error_type}] {self.error}"
        )


@dataclass
class ScheduleResult:
    """What a policy-governed execution produced."""

    completed: list[str] = field(default_factory=list)
    failures: dict[str, RunFailure] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class Task:
    """One schedulable unit: produce ``provides`` once ``requires`` exist.

    ``kind`` only classifies the task's trace span (``"block"``,
    ``"boundary"``, ...); the scheduler itself treats all tasks alike.
    """

    name: str
    provides: str
    requires: tuple[str, ...]
    fn: Callable[[], None]
    kind: str = "task"


def topological_waves(
    tasks: Sequence[Task], available: Iterable[str] = ()
) -> list[list[Task]]:
    """Partition tasks into dependency waves (wave 0 is immediately ready).

    Raises :class:`SchedulerError` if some task can never run -- either a
    dependency cycle or a requirement nothing provides.
    """
    done = set(available)
    pending = list(tasks)
    waves: list[list[Task]] = []
    while pending:
        wave = [t for t in pending if all(r in done for r in t.requires)]
        if not wave:
            stuck = {t.name: [r for r in t.requires if r not in done] for t in pending}
            raise SchedulerError(
                f"task graph deadlocked; unsatisfiable dependencies: {stuck}"
            )
        waves.append(wave)
        done.update(t.provides for t in wave)
        pending = [t for t in pending if t not in wave]
    return waves


class ParallelScheduler:
    """Executes a dependency-ordered task list, optionally concurrently."""

    def __init__(self, max_workers: int = 1):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def execute(
        self,
        tasks: Sequence[Task],
        available: Iterable[str] = (),
        policy: RetryPolicy | None = None,
        tracer=None,
        trace_parent=None,
    ) -> ScheduleResult:
        """Run every task exactly once, honouring ``requires``/``provides``.

        ``available`` seeds the set of already-existing names (the source
        tables).  Task functions perform their own output publication; the
        scheduler only tracks readiness.

        Without a ``policy`` a worker exception propagates to the caller
        unchanged (the historical contract).  With one, failing attempts
        are retried per the policy and the final outcome is captured in
        the returned :class:`ScheduleResult`; tasks whose requirements
        were produced by a failed task are recorded as ``skipped`` and the
        rest of the graph still executes.

        ``tracer`` (a :class:`~repro.obs.trace.Tracer`) records one span
        per task under ``trace_parent``, annotated with outcome, attempts
        and failure details; skipped tasks become instant points.
        """
        if tracer is not None and not tracer.enabled:
            tracer = None
        if self.max_workers <= 1:
            result = self._execute_serial(
                tasks, set(available), policy, tracer, trace_parent
            )
        else:
            result = self._execute_parallel(
                tasks, set(available), policy, tracer, trace_parent
            )
        if tracer is not None:
            for failure in result.failures.values():
                if failure.kind == "skipped":
                    tracer.point(
                        failure.task,
                        kind="skipped",
                        parent=trace_parent,
                        missing=list(failure.missing),
                    )
        return result

    # ------------------------------------------------------------------
    # attempt loop (shared by serial and parallel modes)
    # ------------------------------------------------------------------
    @staticmethod
    def _run_attempt(task: Task, policy: RetryPolicy, tracer=None,
                     span=None) -> None:
        """One attempt, bounded by the policy's deadline if it has one."""
        if policy.block_timeout is None:
            task.fn()
            return
        outcome: list[BaseException] = []
        finished = threading.Event()

        def runner() -> None:
            try:
                # the attempt runs on its own thread: re-activate the task
                # span there so operator points parent correctly
                if tracer is not None and span is not None:
                    with tracer.activate(span):
                        task.fn()
                else:
                    task.fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                outcome.append(exc)
            finally:
                finished.set()

        worker = threading.Thread(
            target=runner, name=f"attempt-{task.name}", daemon=True
        )
        worker.start()
        if not finished.wait(policy.block_timeout):
            raise BlockTimeout(
                f"block {task.name!r} exceeded its "
                f"{policy.block_timeout:g}s deadline"
            )
        if outcome:
            raise outcome[0]

    @classmethod
    def _run_with_retries(
        cls, task: Task, policy: RetryPolicy, tracer=None, span=None
    ) -> RunFailure | None:
        """Attempt ``task`` until success or budget exhaustion."""
        rng = policy.rng_for(task.name)
        start = time.perf_counter()
        attempts = 0
        while True:
            attempts += 1
            try:
                cls._run_attempt(task, policy, tracer, span)
                if span is not None and attempts > 1:
                    span.annotate(attempts=attempts, retried=True)
                return None
            except Exception as exc:  # noqa: BLE001 - classified below
                timed_out = isinstance(exc, BlockTimeout)
                kind = "timeout" if timed_out else policy.classify(exc)
                retryable = kind != "permanent"
                if not retryable or attempts > policy.max_retries:
                    return RunFailure(
                        task=task.name,
                        kind=kind,
                        error=str(exc),
                        error_type=type(exc).__name__,
                        attempts=attempts,
                        elapsed=time.perf_counter() - start,
                    )
                if tracer is not None:
                    tracer.point(
                        "retry",
                        kind="retry",
                        parent=span,
                        attempt=attempts,
                        failure_kind=kind,
                        error=str(exc),
                    )
                policy.sleep(policy.backoff(attempts - 1, rng))

    def _run_task(
        self,
        task: Task,
        policy: RetryPolicy | None,
        tracer=None,
        trace_parent=None,
    ) -> RunFailure | None:
        """One task, traced when a tracer is armed.

        Runs on the calling thread (serial mode) or a pool thread
        (parallel mode); either way the span is opened on the executing
        thread, so it is the thread-local parent for everything the task
        function records.
        """
        if tracer is None:
            if policy is None:
                task.fn()
                return None
            return self._run_with_retries(task, policy)
        span = tracer.start(task.name, kind=task.kind, parent=trace_parent)
        try:
            if policy is None:
                task.fn()
                failure = None
            else:
                failure = self._run_with_retries(task, policy, tracer, span)
        except BaseException as exc:
            tracer.end(
                span, outcome="error", error=f"{type(exc).__name__}: {exc}"
            )
            raise
        if failure is None:
            tracer.end(span, outcome="ok")
        else:
            tracer.end(
                span,
                outcome=failure.kind,
                error=failure.error,
                attempts=failure.attempts,
            )
        return failure

    @staticmethod
    def _skip_dependents(
        pending: list[Task],
        failed_provides: dict[str, str],
        result: ScheduleResult,
    ) -> None:
        """Remove (to fixpoint) every pending task downstream of a failure."""
        changed = True
        while changed:
            changed = False
            for task in list(pending):
                bad = tuple(r for r in task.requires if r in failed_provides)
                if bad:
                    result.failures[task.name] = RunFailure(
                        task=task.name,
                        kind="skipped",
                        error=(
                            "not run: requirement(s) produced by failed "
                            f"task(s) {sorted({failed_provides[r] for r in bad})}"
                        ),
                        error_type="SkippedTask",
                        attempts=0,
                        elapsed=0.0,
                        missing=bad,
                    )
                    failed_provides[task.provides] = task.name
                    pending.remove(task)
                    changed = True

    # ------------------------------------------------------------------
    def _execute_serial(
        self,
        tasks: Sequence[Task],
        done: set[str],
        policy: RetryPolicy | None,
        tracer=None,
        trace_parent=None,
    ) -> ScheduleResult:
        result = ScheduleResult()
        failed_provides: dict[str, str] = {}
        pending = list(tasks)
        while pending:
            if policy is not None:
                self._skip_dependents(pending, failed_provides, result)
            progressed = not pending
            for task in list(pending):
                if all(r in done for r in task.requires):
                    failure = self._run_task(task, policy, tracer, trace_parent)
                    if failure is None:
                        done.add(task.provides)
                        result.completed.append(task.name)
                    else:
                        result.failures[task.name] = failure
                        failed_provides[task.provides] = task.name
                    pending.remove(task)
                    progressed = True
            if not progressed:
                raise SchedulerError(
                    "task graph deadlocked; remaining tasks: "
                    f"{[t.name for t in pending]}"
                )
        return result

    def _execute_parallel(
        self,
        tasks: Sequence[Task],
        done: set[str],
        policy: RetryPolicy | None,
        tracer=None,
        trace_parent=None,
    ) -> ScheduleResult:
        result = ScheduleResult()
        failed_provides: dict[str, str] = {}
        pending = list(tasks)
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            running: dict[Future, Task] = {}
            while pending or running:
                if policy is not None:
                    self._skip_dependents(pending, failed_provides, result)
                for task in list(pending):
                    if all(r in done for r in task.requires):
                        pending.remove(task)
                        try:
                            future = pool.submit(
                                self._run_task, task, policy, tracer,
                                trace_parent,
                            )
                        except RuntimeError as exc:
                            # the pool was shut down under us (interpreter
                            # teardown, cancelled run): surface a structured
                            # failure so dependents take the skip-cascade
                            # path instead of a bare RuntimeError escaping
                            if policy is None:
                                raise SchedulerError(
                                    f"worker pool rejected task "
                                    f"{task.name!r}: {exc}"
                                ) from exc
                            result.failures[task.name] = RunFailure(
                                task=task.name,
                                kind="pool-exhausted",
                                error=str(exc),
                                error_type=type(exc).__name__,
                                attempts=0,
                                elapsed=0.0,
                            )
                            failed_provides[task.provides] = task.name
                            continue
                        running[future] = task
                if not running:
                    if not pending:
                        break
                    raise SchedulerError(
                        "task graph deadlocked; remaining tasks: "
                        f"{[t.name for t in pending]}"
                    )
                finished, _ = wait(running, return_when=FIRST_COMPLETED)
                for future in finished:
                    task = running.pop(future)
                    failure = future.result()  # propagates untraced errors
                    if failure is None:
                        done.add(task.provides)
                        result.completed.append(task.name)
                    else:
                        result.failures[task.name] = failure
                        failed_provides[task.provides] = task.name
        return result
