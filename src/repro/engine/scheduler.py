"""Block scheduling over the analysis DAG.

Block analysis (Section 3.2.1) cuts a workflow into optimizable blocks
joined by boundary operators.  The resulting dependency structure is a DAG
over environment names: each block consumes its input feeds and provides
its output record-set, each boundary consumes one feed and provides one.
The executors used to walk that DAG with an inlined readiness loop; this
module extracts the walk so it can also run *in parallel* -- independent
blocks (different sources, different branches of a multi-target flow)
execute concurrently on a thread pool, which is the seam later
multi-process and distributed schedulers plug into.

Two entry points:

- :func:`topological_waves` -- a pure analysis of the task DAG into
  execution waves (every task in wave *i* depends only on waves ``< i``);
- :class:`ParallelScheduler` -- executes a task list respecting the
  dependencies; ``max_workers <= 1`` degrades to the deterministic serial
  walk, ``max_workers > 1`` uses ``concurrent.futures`` with greedy
  dispatch (a task starts the moment its inputs exist, not when its wave
  starts).
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence


class SchedulerError(RuntimeError):
    """Raised when the task graph cannot be executed (cycle / missing feed)."""


@dataclass(frozen=True)
class Task:
    """One schedulable unit: produce ``provides`` once ``requires`` exist."""

    name: str
    provides: str
    requires: tuple[str, ...]
    fn: Callable[[], None]


def topological_waves(
    tasks: Sequence[Task], available: Iterable[str] = ()
) -> list[list[Task]]:
    """Partition tasks into dependency waves (wave 0 is immediately ready).

    Raises :class:`SchedulerError` if some task can never run -- either a
    dependency cycle or a requirement nothing provides.
    """
    done = set(available)
    pending = list(tasks)
    waves: list[list[Task]] = []
    while pending:
        wave = [t for t in pending if all(r in done for r in t.requires)]
        if not wave:
            stuck = {t.name: [r for r in t.requires if r not in done] for t in pending}
            raise SchedulerError(
                f"task graph deadlocked; unsatisfiable dependencies: {stuck}"
            )
        waves.append(wave)
        done.update(t.provides for t in wave)
        pending = [t for t in pending if t not in wave]
    return waves


class ParallelScheduler:
    """Executes a dependency-ordered task list, optionally concurrently."""

    def __init__(self, max_workers: int = 1):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def execute(self, tasks: Sequence[Task], available: Iterable[str] = ()) -> None:
        """Run every task exactly once, honouring ``requires``/``provides``.

        ``available`` seeds the set of already-existing names (the source
        tables).  Task functions perform their own output publication; the
        scheduler only tracks readiness.
        """
        if self.max_workers <= 1:
            self._execute_serial(tasks, set(available))
        else:
            self._execute_parallel(tasks, set(available))

    # ------------------------------------------------------------------
    @staticmethod
    def _execute_serial(tasks: Sequence[Task], done: set[str]) -> None:
        pending = list(tasks)
        while pending:
            progressed = False
            for task in list(pending):
                if all(r in done for r in task.requires):
                    task.fn()
                    done.add(task.provides)
                    pending.remove(task)
                    progressed = True
            if not progressed:
                raise SchedulerError(
                    "task graph deadlocked; remaining tasks: "
                    f"{[t.name for t in pending]}"
                )

    def _execute_parallel(self, tasks: Sequence[Task], done: set[str]) -> None:
        pending = list(tasks)
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            running: dict[Future, Task] = {}
            while pending or running:
                for task in list(pending):
                    if all(r in done for r in task.requires):
                        pending.remove(task)
                        running[pool.submit(task.fn)] = task
                if not running:
                    raise SchedulerError(
                        "task graph deadlocked; remaining tasks: "
                        f"{[t.name for t in pending]}"
                    )
                finished, _ = wait(running, return_when=FIRST_COMPLETED)
                for future in finished:
                    task = running.pop(future)
                    future.result()  # propagate worker exceptions
                    done.add(task.provides)
