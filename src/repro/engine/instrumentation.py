"""Plan instrumentation: taps that observe statistics during a run.

Section 3.2.5: *"Many commercial ETL engines provide a mechanism to plug in
user defined handlers at any point in the flow ... invoked for every tuple
that passes through that point."*  Our equivalent is the :class:`TapSet`:
it is handed the set of statistics the selection step chose, groups them by
observation point (an SE of the plan, or a reject link), and the executor
calls :meth:`TapSet.observe` whenever a tuple stream materializes at such a
point.

- cardinality  -> a counter (one integer);
- histogram    -> an exact frequency histogram on the tapped attributes;
- distinct     -> a distinct-value counter.

Reject-link statistics are observable because the engine can always add an
instrumentation-only reject output to a join of the initial plan
(Section 4.1.2); :meth:`TapSet.reject_requests` tells the executor which
ones to produce.
"""

from __future__ import annotations

import sys
from collections.abc import Iterable

from repro.algebra.expressions import AnySE, RejectJoinSE, RejectSE
from repro.core.histogram import Histogram
from repro.core.statistics import StatKind, Statistic, StatisticsStore
from repro.engine.table import Table


class InstrumentationError(ValueError):
    """Raised when asked to observe something no plan point can provide."""


class DistinctAccumulator:
    """Exact mergeable distinct-value state for one statistic.

    Counts and histogram buckets merge additively across disjoint row
    shards, but a distinct count does not: merging needs the underlying
    value sets (or a mergeable sketch of them).  This class is that seam.
    This is the exact implementation of the four-method accumulator
    interface -- ``add`` / ``update`` / ``merge`` / ``result`` -- whose
    sketch counterpart is :class:`~repro.estimation.sketches.HllSketch`;
    :func:`make_distinct_accumulator` picks between them from the active
    :class:`~repro.estimation.sketches.SketchSpec` without touching any
    tap or backend code.
    """

    __slots__ = ("values",)

    def __init__(self, values: Iterable[tuple] = ()):
        self.values: set[tuple] = set(values)

    def add(self, value: tuple) -> None:
        self.values.add(value)

    def update(self, values: Iterable[tuple]) -> None:
        self.values.update(values)

    def merge(self, other: "DistinctAccumulator") -> None:
        """Fold another shard's accumulator into this one (set union)."""
        if not isinstance(other, DistinctAccumulator):
            raise InstrumentationError(
                f"cannot merge a {type(other).__name__} into a "
                "DistinctAccumulator: mixed distinct-accumulator "
                "implementations would silently corrupt the count (was "
                "one tap set built under a different sketch_scope?)"
            )
        self.values |= other.values

    def result(self) -> int:
        """The distinct count over everything accumulated so far."""
        return len(self.values)

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the retained value set."""
        return sys.getsizeof(self.values) + sum(
            sys.getsizeof(value) for value in self.values
        )

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistinctAccumulator):
            return NotImplemented
        return self.values == other.values


def make_distinct_accumulator(values: Iterable[tuple] = ()):
    """Factory for the distinct combiner every tap implementation uses.

    This is the single seam behind all five backends' distinct taps:
    under the default spec it returns the exact
    :class:`DistinctAccumulator`; inside a ``mode="hll"``
    :func:`~repro.estimation.sketches.sketch_scope` it returns a
    mergeable :class:`~repro.estimation.sketches.HllSketch`, so shard
    merges become register-max instead of set union and shipped
    observation state drops from O(distinct values) to O(2^p).
    """
    from repro.estimation.sketches import active_sketch_spec, make_sketch

    spec = active_sketch_spec()
    if spec.mode == "hll":
        return make_sketch(spec, values)
    return DistinctAccumulator(values)


class TapSet:
    """Groups requested statistics by observation point and collects them."""

    #: whether :meth:`observe_columns` *accumulates* across calls for the
    #: same point (streaming taps) or *replaces* (table-level taps) --
    #: compiled plans batch their observations accordingly
    additive = False

    def __init__(
        self, stats: Iterable[Statistic] = (), *, mergeable: bool = False
    ):
        self._by_se: dict[AnySE, list[Statistic]] = {}
        self.store = StatisticsStore()
        #: mergeable tap sets retain distinct *value* accumulators (not
        #: just the counts) so disjoint row shards can be folded together
        #: with :meth:`merge`; plain tap sets skip that memory cost
        self.mergeable = mergeable
        #: stat -> accumulator (exact set or HLL sketch, per the factory)
        self._distinct_values: dict[Statistic, object] = {}
        #: stat -> bytes of the last transient accumulator a non-mergeable
        #: observe built (replace semantics, mirrors the stored count)
        self._sketch_bytes: dict[Statistic, int] = {}
        for stat in stats:
            self.request(stat)

    def request(self, stat: Statistic) -> None:
        if isinstance(stat.se, RejectJoinSE):
            raise InstrumentationError(
                f"{stat!r} is never observable: the reject side-join is not "
                "executed by any plan"
            )
        self._by_se.setdefault(stat.se, []).append(stat)

    # ------------------------------------------------------------------
    @property
    def requested(self) -> list[Statistic]:
        return [s for bucket in self._by_se.values() for s in bucket]

    def wants(self, se: AnySE) -> bool:
        return se in self._by_se

    def reject_requests(self) -> set[RejectSE]:
        """Reject links the executor must produce (even instrumentation-only)."""
        return {se for se in self._by_se if isinstance(se, RejectSE)}

    # ------------------------------------------------------------------
    def observe(self, se: AnySE, table: Table) -> None:
        """Collect every statistic requested at this point."""
        for stat in self._by_se.get(se, []):
            if stat.kind is StatKind.CARDINALITY:
                self.store.put(stat, table.num_rows)
            elif stat.kind is StatKind.HISTOGRAM:
                missing = [a for a in stat.attrs if not table.has_column(a)]
                if missing:
                    raise InstrumentationError(
                        f"cannot observe {stat!r}: attributes {missing} are "
                        f"not live at {se!r} (have {table.attrs})"
                    )
                self.store.put(stat, table.histogram(stat.attrs))
            elif self.mergeable:
                acc = self._distinct_values.setdefault(
                    stat, make_distinct_accumulator()
                )
                acc.update(table.rows(stat.attrs))
                self.store.put(stat, acc.result())
            else:
                # non-mergeable taps replace: a fresh factory accumulator
                # per call keeps replace semantics while still flowing
                # through the exact/sketch seam
                acc = make_distinct_accumulator(table.rows(stat.attrs))
                self._sketch_bytes[stat] = acc.size_bytes()
                self.store.put(stat, acc.result())

    def value_attrs(self, se: AnySE) -> tuple[str, ...]:
        """Attributes whose *values* (not just counts) are tapped at ``se``.

        Compiled plans use this to materialize only the columns a
        histogram/distinct tap actually reads, instead of whole tables.
        """
        attrs: set[str] = set()
        for stat in self._by_se.get(se, ()):
            if stat.kind is not StatKind.CARDINALITY:
                attrs.update(stat.attrs)
        return tuple(sorted(attrs))

    def observe_columns(
        self,
        se: AnySE,
        num_rows: int,
        columns: dict[str, list] | None = None,
    ) -> None:
        """Column-batch counterpart of :meth:`observe`.

        ``columns`` needs to carry (at least) :meth:`value_attrs`; it may
        be ``None`` when only cardinalities are tapped at this point.
        Semantics are identical to observing the materialized table.
        """
        columns = columns or {}
        for stat in self._by_se.get(se, []):
            if stat.kind is StatKind.CARDINALITY:
                self.store.put(stat, num_rows)
                continue
            missing = [a for a in stat.attrs if a not in columns]
            if missing:
                raise InstrumentationError(
                    f"cannot observe {stat!r}: attributes {missing} are "
                    f"not live at {se!r} (have {tuple(columns)})"
                )
            rows = zip(*(columns[a] for a in stat.attrs))
            if stat.kind is StatKind.HISTOGRAM:
                self.store.put(stat, Histogram.from_rows(tuple(stat.attrs), rows))
            elif self.mergeable:
                acc = self._distinct_values.setdefault(
                    stat, make_distinct_accumulator()
                )
                acc.update(rows)
                self.store.put(stat, acc.result())
            else:
                acc = make_distinct_accumulator(rows)
                self._sketch_bytes[stat] = acc.size_bytes()
                self.store.put(stat, acc.result())

    # ------------------------------------------------------------------
    # mergeable-observation protocol (sharded execution)
    # ------------------------------------------------------------------
    def merge(self, other: "TapSet") -> None:
        """Fold another tap set's observations into this one.

        Both operands must be :attr:`mergeable` and must have observed
        **disjoint row shards** of the same logical points; under that
        contract the merge is exact:

        - cardinalities add;
        - histogram buckets add (:meth:`Histogram.add`, Equation 1's
          union of disjoint row sets);
        - distinct values merge through the
          :class:`DistinctAccumulator` combiner (set union today, a
          sketch later).
        """
        if not (self.mergeable and other.mergeable):
            raise InstrumentationError(
                "merge() requires both tap sets to be constructed with "
                "mergeable=True (distinct counts cannot be merged without "
                "their value accumulators)"
            )
        for se, bucket in other._by_se.items():
            mine = self._by_se.setdefault(se, [])
            for stat in bucket:
                if stat not in mine:
                    mine.append(stat)
        for stat, value in other.store.items():
            if stat.kind is StatKind.CARDINALITY:
                self.store.put(stat, self.store.maybe(stat, 0) + value)
            elif stat.kind is StatKind.HISTOGRAM:
                base = self.store.maybe(stat)
                self.store.put(stat, value if base is None else base.add(value))
            else:
                acc = self._distinct_values.setdefault(
                    stat, make_distinct_accumulator()
                )
                theirs = other._distinct_values.get(stat)
                if theirs is None:
                    raise InstrumentationError(
                        f"cannot merge {stat!r}: the other tap set has no "
                        "distinct-value accumulator for it"
                    )
                acc.merge(theirs)
                self.store.put(stat, acc.result())

    def discard_points(self, ses: Iterable[AnySE]) -> None:
        """Drop every observation (and request) at the given points.

        Shard workers use this to strip the points they are not
        responsible for (broadcast-replicated inputs, reject links the
        parent re-observes from merged tables) before shipping their tap
        set back, so the parent-side merge stays purely additive.
        """
        drop = set(ses)
        if not drop:
            return
        kept = StatisticsStore()
        for stat, value in self.store.items():
            if stat.se not in drop:
                kept.put(stat, value)
        self.store = kept
        for se in drop:
            self._by_se.pop(se, None)
        self._distinct_values = {
            stat: acc
            for stat, acc in self._distinct_values.items()
            if stat.se not in drop
        }
        self._sketch_bytes = {
            stat: n
            for stat, n in self._sketch_bytes.items()
            if stat.se not in drop
        }

    def distinct_bytes(self) -> int:
        """Bytes of distinct-accumulator state behind this tap set.

        Mergeable tap sets report their retained accumulators (what a
        shard actually ships to the parent); plain tap sets report the
        footprint of the last transient accumulator per statistic.  The
        ``etl_sketch_bytes`` gauge and the sketch-ablation bench read
        this to compare exact sets against HLL registers.
        """
        total = sum(
            acc.size_bytes() for acc in self._distinct_values.values()
        )
        for stat, n in self._sketch_bytes.items():
            if stat not in self._distinct_values:
                total += n
        return total

    def missing(self) -> list[Statistic]:
        """Requested statistics that no observation reached (plan bug)."""
        return [s for s in self.requested if s not in self.store]
