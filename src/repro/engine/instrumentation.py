"""Plan instrumentation: taps that observe statistics during a run.

Section 3.2.5: *"Many commercial ETL engines provide a mechanism to plug in
user defined handlers at any point in the flow ... invoked for every tuple
that passes through that point."*  Our equivalent is the :class:`TapSet`:
it is handed the set of statistics the selection step chose, groups them by
observation point (an SE of the plan, or a reject link), and the executor
calls :meth:`TapSet.observe` whenever a tuple stream materializes at such a
point.

- cardinality  -> a counter (one integer);
- histogram    -> an exact frequency histogram on the tapped attributes;
- distinct     -> a distinct-value counter.

Reject-link statistics are observable because the engine can always add an
instrumentation-only reject output to a join of the initial plan
(Section 4.1.2); :meth:`TapSet.reject_requests` tells the executor which
ones to produce.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.algebra.expressions import AnySE, RejectJoinSE, RejectSE
from repro.core.histogram import Histogram
from repro.core.statistics import StatKind, Statistic, StatisticsStore
from repro.engine.table import Table


class InstrumentationError(ValueError):
    """Raised when asked to observe something no plan point can provide."""


class TapSet:
    """Groups requested statistics by observation point and collects them."""

    #: whether :meth:`observe_columns` *accumulates* across calls for the
    #: same point (streaming taps) or *replaces* (table-level taps) --
    #: compiled plans batch their observations accordingly
    additive = False

    def __init__(self, stats: Iterable[Statistic] = ()):
        self._by_se: dict[AnySE, list[Statistic]] = {}
        self.store = StatisticsStore()
        for stat in stats:
            self.request(stat)

    def request(self, stat: Statistic) -> None:
        if isinstance(stat.se, RejectJoinSE):
            raise InstrumentationError(
                f"{stat!r} is never observable: the reject side-join is not "
                "executed by any plan"
            )
        self._by_se.setdefault(stat.se, []).append(stat)

    # ------------------------------------------------------------------
    @property
    def requested(self) -> list[Statistic]:
        return [s for bucket in self._by_se.values() for s in bucket]

    def wants(self, se: AnySE) -> bool:
        return se in self._by_se

    def reject_requests(self) -> set[RejectSE]:
        """Reject links the executor must produce (even instrumentation-only)."""
        return {se for se in self._by_se if isinstance(se, RejectSE)}

    # ------------------------------------------------------------------
    def observe(self, se: AnySE, table: Table) -> None:
        """Collect every statistic requested at this point."""
        for stat in self._by_se.get(se, []):
            if stat.kind is StatKind.CARDINALITY:
                self.store.put(stat, table.num_rows)
            elif stat.kind is StatKind.HISTOGRAM:
                missing = [a for a in stat.attrs if not table.has_column(a)]
                if missing:
                    raise InstrumentationError(
                        f"cannot observe {stat!r}: attributes {missing} are "
                        f"not live at {se!r} (have {table.attrs})"
                    )
                self.store.put(stat, table.histogram(stat.attrs))
            else:
                self.store.put(stat, table.distinct_count(stat.attrs))

    def value_attrs(self, se: AnySE) -> tuple[str, ...]:
        """Attributes whose *values* (not just counts) are tapped at ``se``.

        Compiled plans use this to materialize only the columns a
        histogram/distinct tap actually reads, instead of whole tables.
        """
        attrs: set[str] = set()
        for stat in self._by_se.get(se, ()):
            if stat.kind is not StatKind.CARDINALITY:
                attrs.update(stat.attrs)
        return tuple(sorted(attrs))

    def observe_columns(
        self,
        se: AnySE,
        num_rows: int,
        columns: dict[str, list] | None = None,
    ) -> None:
        """Column-batch counterpart of :meth:`observe`.

        ``columns`` needs to carry (at least) :meth:`value_attrs`; it may
        be ``None`` when only cardinalities are tapped at this point.
        Semantics are identical to observing the materialized table.
        """
        columns = columns or {}
        for stat in self._by_se.get(se, []):
            if stat.kind is StatKind.CARDINALITY:
                self.store.put(stat, num_rows)
                continue
            missing = [a for a in stat.attrs if a not in columns]
            if missing:
                raise InstrumentationError(
                    f"cannot observe {stat!r}: attributes {missing} are "
                    f"not live at {se!r} (have {tuple(columns)})"
                )
            rows = zip(*(columns[a] for a in stat.attrs))
            if stat.kind is StatKind.HISTOGRAM:
                self.store.put(stat, Histogram.from_rows(tuple(stat.attrs), rows))
            else:
                self.store.put(stat, len(set(rows)))

    def missing(self) -> list[Statistic]:
        """Requested statistics that no observation reached (plan bug)."""
        return [s for s in self.requested if s not in self.store]
