"""Ground-truth SE cardinalities, computed by brute force.

The tests and the accuracy experiments need the *actual* cardinality of
every SE in ℰ -- including the ones the initial plan never produces.  This
module executes every connected join subset directly (a spanning join
order per subset) and returns the exact counts the estimator must match
(exact histograms admit no estimation error; see Section 3.1).

Brute force is backend-agnostic: any registered
:class:`~repro.engine.backend.ExecutionBackend` can drive it.  The
vectorized backend is the natural choice at scale -- its per-kernel-set
join build cache pays off handsomely here, since every join subset of a
block probes the same processed inputs.
"""

from __future__ import annotations

from repro.algebra.blocks import Block, BlockAnalysis
from repro.algebra.expressions import AnySE, SubExpression
from repro.engine.backend import (
    BackendExecutor,
    ExecutionBackend,
    Kernels,
    WorkflowRun,
    get_backend,
)
from repro.engine.table import Table


def block_input_tables(
    block: Block, env: dict[str, Table], kernels: Kernels | None = None
) -> dict[str, Table]:
    """Processed input tables for a block (stage chains applied)."""
    kernels = kernels or Kernels()
    out: dict[str, Table] = {}
    for name, inp in block.inputs.items():
        table = env[inp.base_name]
        for step in inp.steps:
            table = kernels.apply_step(table, step)
        out[name] = table
    return out


def join_subset(
    block: Block,
    inputs: dict[str, Table],
    se: SubExpression,
    kernels: Kernels | None = None,
) -> Table:
    """Evaluate an SE by joining its members along a spanning order."""
    kernels = kernels or Kernels()
    members = sorted(se.relations)
    done = {members[0]}
    table = inputs[members[0]]
    remaining = set(members[1:])
    while remaining:
        progressed = False
        for name in sorted(remaining):
            key = block.graph.crossing_key(frozenset(done), frozenset({name}))
            if not key:
                continue
            table, _l, _r = kernels.hash_join(table, inputs[name], key)
            done.add(name)
            remaining.discard(name)
            progressed = True
            break
        if not progressed:  # pragma: no cover - SEs are connected by def.
            raise ValueError(f"{se!r} is not connected in {block.name}")
    return table


def ground_truth_cardinalities(
    analysis: BlockAnalysis,
    sources: dict[str, Table],
    backend: "ExecutionBackend | str" = "columnar",
) -> dict[AnySE, int]:
    """Exact |e| for every SE in every block's universe.

    Runs the workflow once (initial plans) to build the boundary outputs,
    then brute-forces each block's join subsets from its processed inputs.
    """
    if isinstance(backend, str):
        backend = get_backend(backend)
    run: WorkflowRun = BackendExecutor(analysis, backend).run(sources)
    kernels = backend.make_kernels()
    truth: dict[AnySE, int] = {}
    for block in analysis.blocks:
        inputs = block_input_tables(block, run.env, kernels)
        for name, inp in block.inputs.items():
            table = run.env[inp.base_name]
            stage_names = inp.stage_names()
            truth[SubExpression.of(stage_names[0])] = table.num_rows
            for step, stage in zip(inp.steps, stage_names[1:]):
                table = kernels.apply_step(table, step)
                truth[SubExpression.of(stage)] = table.num_rows
        for se in block.join_ses():
            if len(se) == 1:
                truth[se] = inputs[se.base_name].num_rows
            else:
                truth[se] = join_subset(block, inputs, se, kernels).num_rows
        # post stages operate on the full join result
        table = join_subset(block, inputs, block.join_se, kernels) if len(
            block.join_se
        ) > 1 else inputs[block.join_se.base_name]
        for op in block.floating:
            table = kernels.apply_step(table, op.step)
        for step, stage in zip(block.post_steps, block.post_stage_ses()):
            table = kernels.apply_step(table, step)
            truth[stage] = table.num_rows
    return truth
