"""Physical operators: filter, transform, project, hash join, group-by.

The hash join produces reject outputs on demand -- the rows of one side
that matched no row of the other (the *reject links* of Section 1).  The
engine uses them both for materialized diagnostics outputs and for the
instrumentation-only reject links the union-division method adds
(Section 4.1.2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Sequence

from repro.algebra.blocks import Step
from repro.engine.table import Table, TableError


def apply_filter(table: Table, attr: str, predicate: Callable) -> Table:
    """Keep the rows whose ``attr`` value satisfies the predicate."""
    col = table.column(attr)
    keep = [i for i, v in enumerate(col) if predicate(v)]
    return table.take(keep)


def apply_transform(
    table: Table,
    in_attrs: Sequence[str],
    fn: Callable,
    out_attr: str,
) -> Table:
    """Apply a per-row UDF.  Single input attribute -> ``fn(value)``;
    multiple -> ``fn(value_tuple)``."""
    if len(in_attrs) == 1:
        values = [fn(v) for v in table.column(in_attrs[0])]
    else:
        cols = [table.column(a) for a in in_attrs]
        values = [fn(vals) for vals in zip(*cols)]
    return table.with_column(out_attr, values)


def apply_project(table: Table, attrs: Sequence[str]) -> Table:
    """Restrict the table to the given columns."""
    return table.select_columns(attrs)


def apply_step(table: Table, step: Step) -> Table:
    """Execute one anchored unary step from block analysis."""
    node = step.node
    if step.kind == "filter":
        return apply_filter(table, step.attrs[0], node.predicate.fn)
    if step.kind == "transform":
        out_attr = step.result_attr if step.result_attr else step.attrs[0]
        return apply_transform(table, step.attrs, node.udf.fn, out_attr)
    if step.kind == "project":
        return apply_project(table, step.attrs)
    raise TableError(f"unknown step kind {step.kind!r}")


def hash_join(
    left: Table,
    right: Table,
    key: Sequence[str],
    want_reject_left: bool = False,
    want_reject_right: bool = False,
) -> tuple[Table, Table | None, Table | None]:
    """Equi-join on ``key``; optionally produce reject outputs.

    Output columns: all of the left side plus the right side's non-key,
    non-duplicate columns (join keys coalesce, as in the logical model).
    """
    key = tuple(key)
    build: dict[tuple, list[int]] = defaultdict(list)
    for idx, kv in enumerate(right.rows(key)):
        build[kv].append(idx)

    out_left_attrs = left.attrs
    out_right_attrs = tuple(a for a in right.attrs if a not in left.attrs)
    out_cols: dict[str, list] = {a: [] for a in out_left_attrs + out_right_attrs}

    matched_right: set[int] = set()
    reject_left_rows: list[int] = []
    left_key_rows = list(left.rows(key))
    for li in range(left.num_rows):
        matches = build.get(left_key_rows[li], ())
        if not matches:
            if want_reject_left:
                reject_left_rows.append(li)
            continue
        for ri in matches:
            for a in out_left_attrs:
                out_cols[a].append(left.columns[a][li])
            for a in out_right_attrs:
                out_cols[a].append(right.columns[a][ri])
        if want_reject_right:
            matched_right.update(matches)

    result = Table.wrap(out_cols) if out_cols else Table.empty(out_left_attrs)
    reject_left = left.take(reject_left_rows) if want_reject_left else None
    reject_right = None
    if want_reject_right:
        unmatched = [i for i in range(right.num_rows) if i not in matched_right]
        reject_right = right.take(unmatched)
    return result, reject_left, reject_right


def merge_join(
    left: Table,
    right: Table,
    key: Sequence[str],
) -> Table:
    """Sort-merge equi-join; result rows match :func:`hash_join` exactly
    (order may differ).  Used by the physical-implementation layer."""
    key = tuple(key)
    left_idx = sorted(range(left.num_rows), key=lambda i: _key_of(left, key, i))
    right_idx = sorted(
        range(right.num_rows), key=lambda i: _key_of(right, key, i)
    )
    out_left_attrs = left.attrs
    out_right_attrs = tuple(a for a in right.attrs if a not in left.attrs)
    out_cols: dict[str, list] = {a: [] for a in out_left_attrs + out_right_attrs}

    li = ri = 0
    while li < len(left_idx) and ri < len(right_idx):
        lk = _key_of(left, key, left_idx[li])
        rk = _key_of(right, key, right_idx[ri])
        if lk < rk:
            li += 1
        elif rk < lk:
            ri += 1
        else:
            # gather both equal runs and emit the cross product
            l_end = li
            while l_end < len(left_idx) and _key_of(left, key, left_idx[l_end]) == lk:
                l_end += 1
            r_end = ri
            while r_end < len(right_idx) and _key_of(right, key, right_idx[r_end]) == rk:
                r_end += 1
            for i in left_idx[li:l_end]:
                for j in right_idx[ri:r_end]:
                    for a in out_left_attrs:
                        out_cols[a].append(left.columns[a][i])
                    for a in out_right_attrs:
                        out_cols[a].append(right.columns[a][j])
            li, ri = l_end, r_end
    return Table.wrap(out_cols)


def nested_loop_join(
    left: Table,
    right: Table,
    key: Sequence[str],
) -> Table:
    """Quadratic nested-loop equi-join (the tiny-input fallback)."""
    key = tuple(key)
    out_left_attrs = left.attrs
    out_right_attrs = tuple(a for a in right.attrs if a not in left.attrs)
    out_cols: dict[str, list] = {a: [] for a in out_left_attrs + out_right_attrs}
    right_keys = list(right.rows(key))
    for i, lk in enumerate(left.rows(key)):
        for j, rk in enumerate(right_keys):
            if lk == rk:
                for a in out_left_attrs:
                    out_cols[a].append(left.columns[a][i])
                for a in out_right_attrs:
                    out_cols[a].append(right.columns[a][j])
    return Table.wrap(out_cols)


def _key_of(table: Table, key: Sequence[str], row: int) -> tuple:
    return tuple(table.columns[a][row] for a in key)


def group_by(
    table: Table,
    group_attrs: Sequence[str],
    aggregates: dict[str, tuple[str, str]] | None = None,
) -> Table:
    """Group-by with count/sum/min/max aggregates."""
    group_attrs = tuple(group_attrs)
    aggregates = dict(aggregates or {})
    groups: dict[tuple, list[int]] = defaultdict(list)
    for idx, kv in enumerate(table.rows(group_attrs)):
        groups[kv].append(idx)

    out: dict[str, list] = {a: [] for a in group_attrs}
    for name in aggregates:
        out[name] = []
    for kv in sorted(groups, key=repr):
        idxs = groups[kv]
        for a, v in zip(group_attrs, kv):
            out[a].append(v)
        for name, (fn, in_attr) in aggregates.items():
            if fn == "count":
                out[name].append(len(idxs))
                continue
            values = [table.columns[in_attr][i] for i in idxs]
            if fn == "sum":
                out[name].append(sum(values))
            elif fn == "min":
                out[name].append(min(values))
            elif fn == "max":
                out[name].append(max(values))
            else:  # pragma: no cover - validated upstream
                raise TableError(f"unknown aggregate {fn!r}")
    if not out:
        raise TableError("group-by needs group attributes or aggregates")
    return Table.wrap(out)


def apply_aggregate_udf(table: Table, fn: Callable) -> Table:
    """Run a black-box blocking UDF over row dicts."""
    rows = fn(table.row_dicts())
    if not rows:
        return Table.empty(table.attrs)
    attrs = tuple(rows[0])
    return Table.from_rows(attrs, [tuple(r[a] for a in attrs) for r in rows])
