"""A streaming (per-tuple) backend: the paper's instrumentation model.

Section 3.2.5: *"Many commercial ETL engines provide a mechanism to plug in
user defined handlers at any point in the flow.  These handlers are invoked
for every tuple that passes through that point."*  The columnar
:class:`~repro.engine.executor.Executor` observes materialized tables; this
module executes the same plans as generator pipelines where **each row**
flows through the operators one at a time and statistics are updated
per tuple:

- counters increment row by row;
- histogram buckets increment as values stream past;
- only hash-join build sides, blocking boundaries and materialized outputs
  buffer rows.

All backends are interchangeable: given the same plan and sources they
produce identical targets, SE sizes and observed statistics (the
cross-backend equivalence suite asserts it).  The streaming one exists
because it exercises the *actual* code path an ETL engine would use --
per-tuple observation with bounded instrumentation state.  It plugs into
the shared plan-walking core as :class:`StreamingBackend`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.algebra.blocks import Block, Step
from repro.algebra.expressions import AnySE, RejectSE, SubExpression
from repro.algebra.plans import JoinNode, Leaf, PlanTree
from repro.core.histogram import Histogram
from repro.core.statistics import StatKind, Statistic, StatisticsStore
from repro.engine.backend import (
    BackendExecutor,
    ExecutionBackend,
    RunContext,
    WorkflowRun,
)
from repro.engine.instrumentation import (
    InstrumentationError,
    make_distinct_accumulator,
)
from repro.engine.table import Table, TableError

__all__ = [
    "StreamExecutor",
    "StreamingBackend",
    "StreamingTaps",
    "WorkflowRun",
]

Row = dict


class StreamingTaps:
    """Per-tuple statistic accumulators, grouped by observation point."""

    #: accumulators increment; compiled plans may feed the same point in
    #: several column batches and counts/buckets simply add up
    additive = True

    def __init__(self, stats: Iterable[Statistic] = ()):
        self._by_se: dict[AnySE, list[Statistic]] = {}
        self._counters: dict[Statistic, int] = {}
        self._hists: dict[Statistic, dict] = {}
        #: stat -> accumulator (exact set or HLL sketch, per the factory)
        self._distinct: dict[Statistic, object] = {}
        self._streamed: set[AnySE] = set()
        for stat in stats:
            self.request(stat)

    def request(self, stat: Statistic) -> None:
        from repro.algebra.expressions import RejectJoinSE

        if isinstance(stat.se, RejectJoinSE):
            raise InstrumentationError(
                f"{stat!r} is never observable in a streaming plan"
            )
        self._by_se.setdefault(stat.se, []).append(stat)
        if stat.kind is StatKind.CARDINALITY:
            self._counters[stat] = 0
        elif stat.kind is StatKind.HISTOGRAM:
            self._hists[stat] = defaultdict(int)
        else:
            self._distinct[stat] = make_distinct_accumulator()

    # ------------------------------------------------------------------
    def wants(self, se: AnySE) -> bool:
        return se in self._by_se

    def reject_requests(self) -> set[RejectSE]:
        return {se for se in self._by_se if isinstance(se, RejectSE)}

    def mark_streamed(self, se: AnySE) -> None:
        """Record that this observation point's stream actually ran.

        Accumulators start at zero, so :meth:`collect` must distinguish
        "streamed and saw nothing" from "the producing block never ran"
        (a failed block's requested statistics have to read as *missing*,
        not as zeros, or a degraded run would silently optimize from
        wrong cardinalities instead of falling back).
        """
        self._streamed.add(se)

    def observe_row(self, se: AnySE, row: Row) -> None:
        """The per-tuple handler: O(#stats at this point) per row."""
        for stat in self._by_se.get(se, ()):
            if stat.kind is StatKind.CARDINALITY:
                self._counters[stat] += 1
            else:
                try:
                    value = tuple(row[a] for a in stat.attrs)
                except KeyError as exc:
                    raise InstrumentationError(
                        f"cannot observe {stat!r}: attribute {exc} is not "
                        f"live at {se!r}"
                    ) from exc
                if stat.kind is StatKind.HISTOGRAM:
                    self._hists[stat][value] += 1
                else:
                    self._distinct[stat].add(value)

    def value_attrs(self, se: AnySE) -> tuple[str, ...]:
        """Attributes whose values (not just counts) are tapped at ``se``."""
        attrs: set[str] = set()
        for stat in self._by_se.get(se, ()):
            if stat.kind is not StatKind.CARDINALITY:
                attrs.update(stat.attrs)
        return tuple(sorted(attrs))

    def observe_columns(
        self,
        se: AnySE,
        num_rows: int,
        columns: dict[str, list] | None = None,
    ) -> None:
        """Column-batch handler: one call per batch, accumulators add up.

        Equivalent to :meth:`observe_row` over each of the batch's rows;
        compiled plans use it to keep per-tuple semantics (partial counts
        on failure, accumulation across chunks) at whole-column speed.
        """
        columns = columns or {}
        for stat in self._by_se.get(se, ()):
            if stat.kind is StatKind.CARDINALITY:
                self._counters[stat] += num_rows
                continue
            missing = [a for a in stat.attrs if a not in columns]
            if missing:
                raise InstrumentationError(
                    f"cannot observe {stat!r}: attribute {missing[0]!r} is "
                    f"not live at {se!r}"
                )
            rows = zip(*(columns[a] for a in stat.attrs))
            if stat.kind is StatKind.HISTOGRAM:
                buckets = self._hists[stat]
                for value in rows:
                    buckets[value] += 1
            else:
                self._distinct[stat].update(rows)

    def collect(self) -> StatisticsStore:
        store = StatisticsStore()
        for stat, count in self._counters.items():
            if stat.se in self._streamed:
                store.put(stat, count)
        for stat, buckets in self._hists.items():
            if stat.se in self._streamed:
                store.put(stat, Histogram(stat.attrs, dict(buckets)))
        for stat, values in self._distinct.items():
            if stat.se in self._streamed:
                store.put(stat, values.result())
        return store

    def merge(self, other: "StreamingTaps") -> None:
        """Fold another tap set's accumulators into this one.

        The operands must have streamed **disjoint row shards** of the
        same logical points; counters and histogram buckets add, distinct
        values merge through the :class:`DistinctAccumulator` combiner,
        and a point counts as streamed if either side streamed it.
        """
        for se, bucket in other._by_se.items():
            mine = self._by_se.setdefault(se, [])
            for stat in bucket:
                if stat not in mine:
                    mine.append(stat)
        for stat, count in other._counters.items():
            self._counters[stat] = self._counters.get(stat, 0) + count
        for stat, buckets in other._hists.items():
            mine_hist = self._hists.setdefault(stat, defaultdict(int))
            for value, freq in buckets.items():
                mine_hist[value] += freq
        for stat, acc in other._distinct.items():
            mine_acc = self._distinct.get(stat)
            if mine_acc is None:
                # a factory-fresh accumulator + merge (never a copy of the
                # other side's internals): the factory decides exact vs
                # sketch, and merge() rejects mixed implementations
                mine_acc = self._distinct[stat] = make_distinct_accumulator()
            mine_acc.merge(acc)
        self._streamed |= other._streamed

    def distinct_bytes(self) -> int:
        """Bytes of distinct-accumulator state held by these taps."""
        return sum(acc.size_bytes() for acc in self._distinct.values())

    @property
    def requested(self) -> list[Statistic]:
        return [s for bucket in self._by_se.values() for s in bucket]


def _table_rows(table: Table) -> Iterator[Row]:
    attrs = table.attrs
    for values in table.rows():
        yield dict(zip(attrs, values))


def _rows_table(rows: list[Row], attrs: tuple[str, ...]) -> Table:
    if not rows:
        return Table.empty(attrs)
    return Table.wrap({a: [r[a] for r in rows] for a in attrs})


class StreamingBackend(ExecutionBackend):
    """Pipelined block execution with per-tuple taps."""

    name = "streaming"

    def make_taps(self, stats=()):
        return StreamingTaps(stats)

    def collect(self, taps: StreamingTaps) -> StatisticsStore:
        return taps.collect()

    def observe_boundary(self, ctx: RunContext, se, table) -> None:
        # no tap here: the downstream block's raw-stage stream observes this
        # SE; tapping both points would double-count in streaming mode
        return None

    def compiled_profile(self):
        from repro.engine.compile import CompiledProfile

        # bounded batches over row chunks (the compiled counterpart of
        # per-tuple pipelining), canonical streaming column order
        return CompiledProfile(
            chunk_rows=2048, gather="auto", canonical_output=True
        )

    # ------------------------------------------------------------------
    def _claim_point(self, ctx: RunContext, se: AnySE) -> bool:
        """Claim a shared observation point exactly once per run.

        A shared feed (source or boundary output consumed by several
        blocks) must be observed exactly once -- streaming counters are
        cumulative, unlike the columnar executor's idempotent puts.
        """
        with ctx.lock:
            claimed = ctx.state.setdefault("claimed_points", set())
            if se in claimed:
                return False
            claimed.add(se)
            return True

    def execute_block(self, block: Block, tree: PlanTree, ctx: RunContext) -> Table:
        run, taps = ctx.run, ctx.taps
        wanted_rejects = taps.reject_requests() | set(block.materialized_rejects)
        counts: dict[AnySE, int] = defaultdict(int)

        # each floating op fires at the lowest tree node containing its
        # anchor (same placement as the columnar executor)
        ops_at: dict[AnySE, list] = defaultdict(list)
        placed: set[int] = set()

        def place_ops(node: PlanTree) -> None:
            if isinstance(node, JoinNode):
                place_ops(node.left)
                place_ops(node.right)
            for idx, op in enumerate(block.floating):
                if idx not in placed and op.anchor <= node.se.relations:
                    ops_at[node.se].append(op)
                    placed.add(idx)

        place_ops(tree)

        def tap_stream(se: AnySE, rows: Iterator[Row]) -> Iterator[Row]:
            counts[se] += 0  # register the point even if no row passes
            for row in rows:
                counts[se] += 1
                taps.observe_row(se, row)
                yield row
            # marked only on exhaustion: a block that dies mid-stream must
            # report the point as unobserved, not as a partial accumulation
            taps.mark_streamed(se)

        def input_stream(name: str) -> Iterator[Row]:
            inp = block.inputs[name]
            rows: Iterator[Row] = _table_rows(run.env[inp.base_name])
            stage_names = inp.stage_names()
            raw_se = SubExpression.of(stage_names[0])
            if self._claim_point(ctx, raw_se):
                rows = tap_stream(raw_se, rows)
            # else: size and stats already captured by the first consumer
            for step, stage in zip(inp.steps, stage_names[1:]):
                rows = _apply_step_stream(rows, step)
                rows = tap_stream(SubExpression.of(stage), rows)
            return rows

        def exec_tree(node: PlanTree) -> Iterator[Row]:
            if isinstance(node, Leaf):
                return input_stream(node.name)
            return join_stream(node)

        def join_stream(node: JoinNode) -> Iterator[Row]:
            key = tuple(node.key)
            rej_key = key[0] if len(key) == 1 else key
            rej_left = RejectSE(node.left.se, rej_key, node.right.se)
            rej_right = RejectSE(node.right.se, rej_key, node.left.se)
            want_left = rej_left in wanted_rejects
            want_right = rej_right in wanted_rejects

            # build the right side (materialized), stream the left
            build: dict[tuple, list[Row]] = defaultdict(list)
            build_rows: list[Row] = []
            for row in exec_tree(node.right):
                build[tuple(row[a] for a in key)].append(row)
                build_rows.append(row)
            matched_keys: set[tuple] = set()

            def generate() -> Iterator[Row]:
                reject_left_rows: list[Row] = []
                for row in exec_tree(node.left):
                    kv = tuple(row[a] for a in key)
                    matches = build.get(kv)
                    if not matches:
                        if want_left:
                            reject_left_rows.append(row)
                        continue
                    if want_right:
                        matched_keys.add(kv)
                    for other in matches:
                        merged = dict(other)
                        merged.update(row)
                        for op in ops_at.get(node.se, ()):
                            merged = _apply_step_row(merged, op.step)
                        yield merged
                # probe exhausted: emit reject links
                if want_left:
                    self._note_reject(
                        ctx, rej_left, reject_left_rows, block, node.left.se
                    )
                if want_right:
                    rejected = [
                        r
                        for r in build_rows
                        if tuple(r[a] for a in key) not in matched_keys
                    ]
                    self._note_reject(
                        ctx, rej_right, rejected, block, node.right.se
                    )

            return tap_stream(node.se, generate())

        # floating ops fire once their anchor is joined; handled per row
        final_rows = list(exec_tree(tree))

        out_attrs = block.se_attrs(tree.se)
        table = _rows_table(final_rows, tuple(out_attrs))

        post_sizes: dict[AnySE, int] = {}
        for step, stage in zip(block.post_steps, block.post_stage_ses()):
            rows = _apply_step_stream(_table_rows(table), step)
            collected = list(tap_stream(stage, rows))
            table = _rows_table(collected, tuple(step.out_attrs))
            post_sizes[stage] = table.num_rows
        with ctx.lock:
            run.se_sizes.update(post_sizes)
            run.se_sizes.update(counts)
        ctx.trace_sizes({**counts, **post_sizes})
        return table

    def _note_reject(
        self,
        ctx: RunContext,
        rej: RejectSE,
        rows: list[Row],
        block: Block,
        src_se,
    ) -> None:
        attrs = tuple(block.se_attrs(src_se))
        table = _rows_table(rows, attrs)
        with ctx.lock:
            ctx.run.rejects[rej] = table
            ctx.run.se_sizes[rej] = table.num_rows
        ctx.taps.mark_streamed(rej)  # the join completed; zero rejects is real
        for row in rows:
            ctx.taps.observe_row(rej, row)
        if ctx.tracer is not None and ctx.tracer.enabled:
            ctx.trace_point(rej, table.num_rows, reject=True)


class StreamExecutor(BackendExecutor):
    """Pipelined workflow execution with per-tuple taps."""

    def __init__(self, analysis, workers: int = 1):
        super().__init__(analysis, StreamingBackend(), workers=workers)


def _apply_step_row(row: Row, step: Step) -> Row | None:
    node = step.node
    if step.kind == "filter":
        return row if node.predicate.fn(row[step.attrs[0]]) else None
    if step.kind == "transform":
        out_attr = step.result_attr if step.result_attr else step.attrs[0]
        new = dict(row)
        if len(step.attrs) == 1:
            new[out_attr] = node.udf.fn(row[step.attrs[0]])
        else:
            new[out_attr] = node.udf.fn(tuple(row[a] for a in step.attrs))
        return new
    if step.kind == "project":
        return {a: row[a] for a in step.attrs}
    raise TableError(f"unknown step kind {step.kind!r}")


def _apply_step_stream(rows: Iterator[Row], step: Step) -> Iterator[Row]:
    for row in rows:
        out = _apply_step_row(row, step)
        if out is not None:
            yield out
