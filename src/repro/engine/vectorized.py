"""Vectorized execution kernels: whole-column operators with selection vectors.

The columnar backend's reference kernels (:mod:`repro.engine.physical`)
move one cell at a time through Python loops -- correct, but every gathered
value pays interpreter overhead.  The vectorized backend keeps the exact
same operator semantics while restructuring each kernel around four ideas
standard in analytical engines:

- **selection vectors**: a filter evaluates its predicate once per row into
  an index vector, then gathers *all* columns in one bulk operation instead
  of per-column Python loops (an all-rows-pass filter is a zero-copy
  no-op);
- **bulk gathers**: index-vector gathers go through ``numpy`` fancy
  indexing when available (object dtype, so values round-trip unchanged --
  no bool/int/float coercion), with pure-Python list comprehensions as the
  numpy-free fallback; results are identical either way;
- **array-resident intermediates**: join outputs stay as object ``ndarray``
  columns inside a block, and a per-kernel-set conversion cache pins each
  source column's array form, so an N-way join chain converts every column
  at most once instead of once per join;
- **hash-join build reuse**: the join hash table for a given (build side,
  key) pair is built once per kernel set and cached, so repeated joins
  against the same processed input (re-orderings, ground-truth brute
  force) skip the build pass.  Unique build keys (the FK-lookup common
  case) get a scalar-valued hash table and a branch-free probe loop.

:class:`VectorizedBackend` reuses the columnar backend's block walk --
only the kernels differ -- which is exactly the seam the
:class:`~repro.engine.backend.ExecutionBackend` protocol formalizes.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.algebra.blocks import Step
from repro.engine.backend import Kernels
from repro.engine.executor import ColumnarBackend
from repro.engine.physical import apply_aggregate_udf, group_by
from repro.engine.table import Table, TableError

try:  # numpy accelerates bulk gathers but is not required
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

__all__ = ["VectorizedBackend", "VectorizedKernels"]

#: below this many gathered rows the list comprehension beats the
#: list -> ndarray -> list round-trip
_NUMPY_MIN_GATHER = 64


def _as_list(column: Sequence) -> Sequence:
    """A form of the column that is fast to iterate row by row."""
    if _np is not None and isinstance(column, _np.ndarray):
        return column.tolist()
    return column


class VectorizedKernels(Kernels):
    """Column-at-a-time kernels with per-run array and join-build caches."""

    name = "vectorized"

    def __init__(self) -> None:
        # (id(build side), key) -> (table ref, hash table, unique flag);
        # holding the referenced object pins its id for the cache lifetime
        self._builds: dict = {}
        # id(column) -> (column ref, object ndarray)
        self._arrays: dict = {}

    # -- bulk gather ---------------------------------------------------
    def _as_array(self, column: Sequence):
        """Object-dtype array form of a column, converted at most once."""
        if isinstance(column, _np.ndarray):
            return column
        hit = self._arrays.get(id(column))
        if hit is not None and hit[0] is column:
            return hit[1]
        arr = _np.empty(len(column), dtype=object)
        arr[:] = column
        self._arrays[id(column)] = (column, arr)
        return arr

    def gather(self, column: Sequence, sel: Sequence[int]):
        """Bulk-gather ``column[i] for i in sel``.

        Returns an object ndarray on the numpy path (kept array-resident
        for the next gather); values are the original Python objects --
        object dtype never coerces.
        """
        if _np is not None and len(sel) >= _NUMPY_MIN_GATHER:
            arr = self._as_array(column)
            if not isinstance(sel, _np.ndarray):
                sel = _np.asarray(sel, dtype=_np.intp)
            return arr[sel]
        return [column[i] for i in sel]

    @staticmethod
    def _as_index(sel: Sequence[int]):
        """Index-array form of a selection vector, converted once per use
        site so every column gathered with it shares the conversion."""
        if _np is not None and len(sel) >= _NUMPY_MIN_GATHER:
            return _np.asarray(sel, dtype=_np.intp)
        return sel

    def take(self, table: Table, sel: Sequence[int]) -> Table:
        """Materialize a selection vector over every column of ``table``."""
        sel = self._as_index(sel)
        return Table.wrap(
            {a: self.gather(col, sel) for a, col in table.columns.items()}
        )

    # -- unary steps ---------------------------------------------------
    def apply_step(self, table: Table, step: Step) -> Table:
        node = step.node
        if step.kind == "filter":
            return self._filter(table, step.attrs[0], node.predicate.fn)
        if step.kind == "transform":
            out_attr = step.result_attr if step.result_attr else step.attrs[0]
            return self._transform(table, step.attrs, node.udf.fn, out_attr)
        if step.kind == "project":
            return Table.wrap({a: table.column(a) for a in step.attrs})
        raise TableError(f"unknown step kind {step.kind!r}")

    def _filter(self, table: Table, attr: str, predicate: Callable) -> Table:
        col = _as_list(table.column(attr))
        sel = [i for i, v in enumerate(col) if predicate(v)]  # selection vector
        if len(sel) == table.num_rows:
            return table  # all rows pass: zero copies
        return self.take(table, sel)

    @staticmethod
    def _transform(
        table: Table, in_attrs: Sequence[str], fn: Callable, out_attr: str
    ) -> Table:
        if len(in_attrs) == 1:
            values = [fn(v) for v in _as_list(table.column(in_attrs[0]))]
        else:
            cols = [_as_list(table.column(a)) for a in in_attrs]
            values = [fn(vals) for vals in zip(*cols)]
        columns = dict(table.columns)
        columns[out_attr] = values
        return Table.wrap(columns)

    # -- joins ---------------------------------------------------------
    def _probe_keys(self, table: Table, key: tuple[str, ...]) -> Sequence:
        if len(key) == 1:
            return _as_list(table.column(key[0]))
        return list(zip(*(_as_list(table.column(a)) for a in key)))

    def _build_side(self, table: Table, key: tuple[str, ...]):
        """``(hash table, unique)`` for the build side, built once per run.

        ``unique`` means every key occurs at most once, so the hash table
        maps key -> row index (the FK-lookup fast path); otherwise it maps
        key -> list of row indexes.
        """
        cache_key = (id(table), key)
        hit = self._builds.get(cache_key)
        if hit is not None and hit[0] is table:
            return hit[1], hit[2]
        build: dict = {}
        unique = True
        for idx, kv in enumerate(self._probe_keys(table, key)):
            bucket = build.get(kv)
            if bucket is None:
                build[kv] = idx
            elif isinstance(bucket, int):
                build[kv] = [bucket, idx]
                unique = False
            else:
                bucket.append(idx)
        if not unique:  # normalize: every value is a list
            build = {
                kv: [v] if isinstance(v, int) else v for kv, v in build.items()
            }
        self._builds[cache_key] = (table, build, unique)
        return build, unique

    def hash_join(
        self,
        left: Table,
        right: Table,
        key: Sequence[str],
        want_reject_left: bool = False,
        want_reject_right: bool = False,
    ) -> tuple[Table, Table | None, Table | None]:
        """Equi-join on ``key``; row-identical to the reference kernel.

        The probe pass emits two selection vectors (left row index, right
        row index per output row); output columns are bulk-gathered.
        """
        key = tuple(key)
        build, unique = self._build_side(right, key)
        probe_keys = self._probe_keys(left, key)

        out_li: list[int] = []
        out_ri: list[int] = []
        matched_right: set[int] = set()
        reject_left_rows: list[int] = []
        track = want_reject_left or want_reject_right
        if unique and not track:
            # C-speed probe: one map() over the hash table, then two
            # comprehensions to split the hits into selection vectors
            ris = list(map(build.get, probe_keys))
            out_li = [li for li, ri in enumerate(ris) if ri is not None]
            out_ri = [ri for ri in ris if ri is not None]
        elif unique:
            for li, kv in enumerate(probe_keys):
                ri = build.get(kv)
                if ri is None:
                    if want_reject_left:
                        reject_left_rows.append(li)
                    continue
                out_li.append(li)
                out_ri.append(ri)
                if want_reject_right:
                    matched_right.add(ri)
        else:
            for li, kv in enumerate(probe_keys):
                matches = build.get(kv)
                if not matches:
                    if want_reject_left:
                        reject_left_rows.append(li)
                    continue
                if len(matches) == 1:
                    out_li.append(li)
                    out_ri.append(matches[0])
                else:
                    out_li.extend([li] * len(matches))
                    out_ri.extend(matches)
                if want_reject_right:
                    matched_right.update(matches)

        out_li = self._as_index(out_li)
        out_ri = self._as_index(out_ri)
        out_cols: dict = {
            a: self.gather(col, out_li) for a, col in left.columns.items()
        }
        for a in right.attrs:
            if a not in out_cols:
                out_cols[a] = self.gather(right.column(a), out_ri)
        result = Table.wrap(out_cols)

        reject_left = (
            self.take(left, reject_left_rows) if want_reject_left else None
        )
        reject_right = None
        if want_reject_right:
            unmatched = [
                i for i in range(right.num_rows) if i not in matched_right
            ]
            reject_right = self.take(right, unmatched)
        return result, reject_left, reject_right

    # -- blocking operators (not hot: reuse the reference kernels) -----
    group_by = staticmethod(group_by)
    apply_aggregate_udf = staticmethod(apply_aggregate_udf)


if _np is None:  # pragma: no cover - numpy ships with the toolchain
    # numpy-free fallback: identical semantics through list comprehensions
    class _ListKernels(VectorizedKernels):
        def _as_array(self, column):
            raise AssertionError("unreachable without numpy")

        def gather(self, column, sel):
            return [column[i] for i in sel]

    VectorizedKernels = _ListKernels  # type: ignore[misc]


class VectorizedBackend(ColumnarBackend):
    """The columnar block walk running on vectorized kernels."""

    name = "vectorized"

    def make_kernels(self) -> VectorizedKernels:
        return VectorizedKernels()

    def compiled_profile(self):
        from repro.engine.compile import CompiledProfile

        # whole-column batches on the best available gather rung
        return CompiledProfile(chunk_rows=None, gather="auto")
