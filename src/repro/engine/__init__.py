"""Execution engine: columnar tables, physical operators, instrumentation.

Execution is organized around pluggable backends (see
:mod:`repro.engine.backend`): the columnar, streaming and vectorized
backends share one plan-walking core and differ only in kernels and
instrumentation style.  ``get_backend("columnar" | "streaming" |
"vectorized")`` resolves one by name; :class:`BackendExecutor` runs it,
optionally scheduling independent blocks in parallel.
"""

from repro.engine.backend import (
    BackendExecutor,
    ExecutionBackend,
    Kernels,
    RunContext,
    WorkflowRun,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.executor import ColumnarBackend, Executor, execute_workflow
from repro.engine.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    PermanentFault,
    TransientFault,
)
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.engine.instrumentation import InstrumentationError, TapSet
from repro.engine.scheduler import (
    ParallelScheduler,
    RetryPolicy,
    RunFailure,
    ScheduleResult,
    SchedulerError,
    classify_error,
    topological_waves,
)
from repro.engine.streaming import StreamExecutor, StreamingBackend, StreamingTaps
from repro.engine.table import Table, TableError
from repro.engine.vectorized import VectorizedBackend, VectorizedKernels

__all__ = [
    "available_backends", "BackendExecutor", "classify_error",
    "ColumnarBackend", "execute_workflow", "ExecutionBackend", "Executor",
    "FaultInjector", "FaultPlan", "FaultSpec", "get_backend",
    "ground_truth_cardinalities", "InstrumentationError", "Kernels",
    "ParallelScheduler", "PermanentFault", "register_backend", "RetryPolicy",
    "RunContext", "RunFailure", "ScheduleResult", "SchedulerError",
    "StreamExecutor", "StreamingBackend", "StreamingTaps", "Table",
    "TableError", "TapSet", "topological_waves", "TransientFault",
    "VectorizedBackend", "VectorizedKernels", "WorkflowRun",
]
