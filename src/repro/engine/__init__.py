"""Execution engine: columnar tables, physical operators, instrumentation."""

from repro.engine.executor import Executor, WorkflowRun, execute_workflow
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.engine.instrumentation import InstrumentationError, TapSet
from repro.engine.streaming import StreamExecutor, StreamingTaps
from repro.engine.table import Table, TableError

__all__ = [
    "execute_workflow", "Executor", "ground_truth_cardinalities",
    "InstrumentationError", "StreamExecutor", "StreamingTaps", "Table",
    "TableError", "TapSet", "WorkflowRun",
]
