"""Workflow execution: runs blocks (optionally re-ordered) over tables.

The executor is the "run instrumented plan" step of the framework
(Section 3.2.6).  It executes each optimizable block with either its
initial join tree or a caller-supplied re-ordering, applies boundary
operators between blocks, produces the target record-sets, and fires the
:class:`~repro.engine.instrumentation.TapSet` at every plan point.

Every point's row count is recorded in ``se_sizes`` regardless of taps --
this is the passive monitoring signal (the LEO-style baseline) and the
previous-run SE sizes the CPU cost metric needs (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.blocks import Block, BlockAnalysis
from repro.algebra.expressions import AnySE, RejectSE, SubExpression
from repro.algebra.operators import Aggregate, AggregateUDF, Materialize, Target
from repro.algebra.plans import Leaf, PlanTree
from repro.core.statistics import StatisticsStore
from repro.engine.instrumentation import TapSet
from repro.engine.physical import (
    apply_aggregate_udf,
    apply_step,
    group_by,
    hash_join,
)
from repro.engine.table import Table, TableError


@dataclass
class WorkflowRun:
    """Everything a single execution produced."""

    env: dict[str, Table] = field(default_factory=dict)
    targets: dict[str, Table] = field(default_factory=dict)
    observations: StatisticsStore = field(default_factory=StatisticsStore)
    se_sizes: dict[AnySE, int] = field(default_factory=dict)
    rejects: dict[RejectSE, Table] = field(default_factory=dict)

    def target(self, name: str) -> Table:
        return self.targets[name]


class Executor:
    """Executes an analyzed workflow over source tables."""

    def __init__(self, analysis: BlockAnalysis):
        self.analysis = analysis

    def run(
        self,
        sources: dict[str, Table],
        trees: dict[str, PlanTree] | None = None,
        taps: TapSet | None = None,
    ) -> WorkflowRun:
        """Execute the workflow.

        ``trees`` maps block names to replacement join trees (defaults to
        each block's initial plan); ``taps`` is the instrumentation to fire.
        """
        trees = trees or {}
        taps = taps if taps is not None else TapSet()
        run = WorkflowRun(env=dict(sources))
        self._check_sources(sources)

        # blocks and boundaries depend on each other's outputs; execute
        # whatever is ready until everything has run
        pending_blocks = list(self.analysis.blocks)
        pending_boundaries = list(self.analysis.boundaries)
        while pending_blocks or pending_boundaries:
            progressed = False
            for block in list(pending_blocks):
                feeds = [inp.base_name for inp in block.inputs.values()]
                if all(name in run.env for name in feeds):
                    tree = trees.get(block.name, block.initial_tree)
                    run.env[block.output_name] = self._execute_block(
                        block, tree, run, taps
                    )
                    pending_blocks.remove(block)
                    progressed = True
            for boundary in list(pending_boundaries):
                if boundary.input_name in run.env:
                    self._execute_boundary(boundary, run, taps)
                    pending_boundaries.remove(boundary)
                    progressed = True
            if not progressed:  # pragma: no cover - analysis emits a DAG
                raise TableError(
                    "workflow execution deadlocked; block analysis produced "
                    "a cyclic dependency"
                )

        run.observations = taps.store
        return run

    def _execute_boundary(
        self, boundary, run: WorkflowRun, taps: TapSet
    ) -> None:
        node = boundary.node
        table = run.env[boundary.input_name]
        if isinstance(node, Target):
            run.targets[node.name] = table
            return
        if isinstance(node, Aggregate):
            out = group_by(table, node.group_attrs, node.aggregates)
        elif isinstance(node, AggregateUDF):
            out = apply_aggregate_udf(table, node.fn)
        elif isinstance(node, Materialize):
            out = table
        else:  # pragma: no cover - analysis emits only these
            raise TableError(f"unexpected boundary {node.label}")
        run.env[boundary.output_name] = out
        out_se = SubExpression.of(boundary.output_name)
        run.se_sizes[out_se] = out.num_rows
        taps.observe(out_se, out)

    # ------------------------------------------------------------------
    def _check_sources(self, sources: dict[str, Table]) -> None:
        missing = [
            name
            for name in self.analysis.workflow.source_names()
            if name not in sources
        ]
        if missing:
            raise TableError(f"missing source tables: {missing}")

    def _execute_block(
        self, block: Block, tree: PlanTree, run: WorkflowRun, taps: TapSet
    ) -> Table:
        if set(leaf.name for leaf in _tree_leaves(tree)) != set(block.inputs):
            raise TableError(
                f"plan tree for {block.name} does not cover its inputs"
            )
        inputs: dict[str, Table] = {}
        for name, inp in sorted(block.inputs.items()):
            table = run.env[inp.base_name]
            stage_names = inp.stage_names()
            self._note(run, taps, SubExpression.of(stage_names[0]), table)
            for step, stage in zip(inp.steps, stage_names[1:]):
                table = apply_step(table, step)
                self._note(run, taps, SubExpression.of(stage), table)
            inputs[name] = table

        wanted_rejects = taps.reject_requests() | set(block.materialized_rejects)
        applied_floating: set[int] = set()

        def exec_tree(node: PlanTree) -> Table:
            if isinstance(node, Leaf):
                return inputs[node.name]
            left = exec_tree(node.left)
            right = exec_tree(node.right)
            key = tuple(node.key)
            rej_key = key[0] if len(key) == 1 else key
            rej_left = RejectSE(node.left.se, rej_key, node.right.se)
            rej_right = RejectSE(node.right.se, rej_key, node.left.se)
            want_l = rej_left in wanted_rejects
            want_r = rej_right in wanted_rejects
            result, reject_l, reject_r = hash_join(
                left, right, key, want_l, want_r
            )
            if want_l:
                run.rejects[rej_left] = reject_l
                run.se_sizes[rej_left] = reject_l.num_rows
                taps.observe(rej_left, reject_l)
            if want_r:
                run.rejects[rej_right] = reject_r
                run.se_sizes[rej_right] = reject_r.num_rows
                taps.observe(rej_right, reject_r)
            result = self._apply_floating(block, node.se, result, applied_floating)
            self._note(run, taps, node.se, result)
            return result

        table = exec_tree(tree)
        for step, stage in zip(block.post_steps, block.post_stage_ses()):
            table = apply_step(table, step)
            self._note(run, taps, stage, table)
        return table

    def _apply_floating(
        self,
        block: Block,
        se: SubExpression,
        table: Table,
        applied: set[int],
    ) -> Table:
        for idx, op in enumerate(block.floating):
            if idx in applied or not (op.anchor <= se.relations):
                continue
            table = apply_step(table, op.step)
            applied.add(idx)
        return table

    @staticmethod
    def _note(
        run: WorkflowRun, taps: TapSet, se: SubExpression, table: Table
    ) -> None:
        run.se_sizes[se] = table.num_rows
        taps.observe(se, table)


def _tree_leaves(tree: PlanTree) -> list[Leaf]:
    if isinstance(tree, Leaf):
        return [tree]
    return _tree_leaves(tree.left) + _tree_leaves(tree.right)


def execute_workflow(
    analysis: BlockAnalysis,
    sources: dict[str, Table],
    trees: dict[str, PlanTree] | None = None,
    taps: TapSet | None = None,
) -> WorkflowRun:
    """Convenience wrapper over :class:`Executor`."""
    return Executor(analysis).run(sources, trees=trees, taps=taps)
