"""Columnar workflow execution: runs blocks (optionally re-ordered) over tables.

The executor is the "run instrumented plan" step of the framework
(Section 3.2.6).  It executes each optimizable block with either its
initial join tree or a caller-supplied re-ordering, applies boundary
operators between blocks, produces the target record-sets, and fires the
:class:`~repro.engine.instrumentation.TapSet` at every plan point.

Every point's row count is recorded in ``se_sizes`` regardless of taps --
this is the passive monitoring signal (the LEO-style baseline) and the
previous-run SE sizes the CPU cost metric needs (Section 5.4).

The plan-walking core (scheduling blocks and boundaries over the analysis
DAG) lives in :class:`~repro.engine.backend.BackendExecutor`;
:class:`ColumnarBackend` supplies the materialized column-at-a-time block
execution strategy, shared with the vectorized backend which only swaps
the kernels.
"""

from __future__ import annotations

from repro.algebra.blocks import Block
from repro.algebra.expressions import RejectSE, SubExpression
from repro.algebra.plans import Leaf, PlanTree, leaves as _tree_leaves
from repro.core.statistics import StatisticsStore
from repro.engine.backend import (
    BackendExecutor,
    ExecutionBackend,
    RunContext,
    WorkflowRun,
)
from repro.engine.instrumentation import TapSet
from repro.engine.table import Table, TableError

__all__ = [
    "ColumnarBackend",
    "Executor",
    "WorkflowRun",
    "execute_workflow",
]


class ColumnarBackend(ExecutionBackend):
    """Materialized column-at-a-time execution with table-level taps."""

    name = "columnar"

    def make_taps(self, stats=()):
        return TapSet(stats)

    def collect(self, taps: TapSet) -> StatisticsStore:
        return taps.store

    def compiled_profile(self):
        from repro.engine.compile import CompiledProfile

        # whole-column batches; the reference (pure Python) gather rung
        return CompiledProfile(chunk_rows=None, gather="python")

    # ------------------------------------------------------------------
    def execute_block(self, block: Block, tree: PlanTree, ctx: RunContext) -> Table:
        if {leaf.name for leaf in _tree_leaves(tree)} != set(block.inputs):
            raise TableError(
                f"plan tree for {block.name} does not cover its inputs"
            )
        kernels = ctx.kernels
        run, taps = ctx.run, ctx.taps
        inputs: dict[str, Table] = {}
        for name, inp in sorted(block.inputs.items()):
            table = run.env[inp.base_name]
            stage_names = inp.stage_names()
            ctx.note(SubExpression.of(stage_names[0]), table)
            for step, stage in zip(inp.steps, stage_names[1:]):
                table = kernels.apply_step(table, step)
                ctx.note(SubExpression.of(stage), table)
            inputs[name] = table

        wanted_rejects = taps.reject_requests() | set(block.materialized_rejects)
        applied_floating: set[int] = set()

        def exec_tree(node: PlanTree) -> Table:
            if isinstance(node, Leaf):
                return inputs[node.name]
            left = exec_tree(node.left)
            right = exec_tree(node.right)
            key = tuple(node.key)
            rej_key = key[0] if len(key) == 1 else key
            rej_left = RejectSE(node.left.se, rej_key, node.right.se)
            rej_right = RejectSE(node.right.se, rej_key, node.left.se)
            want_l = rej_left in wanted_rejects
            want_r = rej_right in wanted_rejects
            result, reject_l, reject_r = kernels.hash_join(
                left, right, key, want_l, want_r
            )
            if want_l:
                ctx.note_reject(rej_left, reject_l)
            if want_r:
                ctx.note_reject(rej_right, reject_r)
            result = self._apply_floating(
                block, node.se, result, applied_floating, ctx
            )
            ctx.note(node.se, result)
            return result

        table = exec_tree(tree)
        for step, stage in zip(block.post_steps, block.post_stage_ses()):
            table = kernels.apply_step(table, step)
            ctx.note(stage, table)
        return table

    def _apply_floating(
        self,
        block: Block,
        se: SubExpression,
        table: Table,
        applied: set[int],
        ctx: RunContext,
    ) -> Table:
        for idx, op in enumerate(block.floating):
            if idx in applied or not (op.anchor <= se.relations):
                continue
            table = ctx.kernels.apply_step(table, op.step)
            applied.add(idx)
        return table


class Executor(BackendExecutor):
    """Executes an analyzed workflow over source tables (columnar)."""

    def __init__(self, analysis, workers: int = 1):
        super().__init__(analysis, ColumnarBackend(), workers=workers)


def execute_workflow(
    analysis,
    sources: dict[str, Table],
    trees: dict[str, PlanTree] | None = None,
    taps: TapSet | None = None,
) -> WorkflowRun:
    """Convenience wrapper over :class:`Executor`."""
    return Executor(analysis).run(sources, trees=trees, taps=taps)
