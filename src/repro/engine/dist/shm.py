"""Shared-memory columnar transport between the parent and shard workers.

Fork inheritance moves the *initial* source tables into workers for free,
but any table produced after the pool forked (screened sources, upstream
block outputs) has to travel.  Pickling whole tables through the pool's
pipe would copy them once per shard; instead the parent encodes each such
table **once** into a ``multiprocessing.shared_memory`` segment and ships
a tiny :class:`ShmRef`, which every worker attaches read-only and decodes
(with a per-process cache, so k shards of the same block decode once).

Layout of a segment::

    [8-byte little-endian meta length][meta pickle][column payload ...]

The meta pickle carries the row count and, per column, its name, encoding
and byte length.  Columns of pure ``int`` / pure ``float`` values are
packed as fixed-width arrays (decoded through numpy when it is
available -- the same optional ladder as the compiled kernels); anything
else (strings, ``None``-bearing, mixed) falls back to a pickled list.

CPython 3.11 registers a segment with the ``resource_tracker`` on
*attach* as well as on create.  The backend forks its pool only after
ensuring the parent's tracker process is running, so every worker shares
that tracker and the attach-side registration dedups against the parent's
create-side one (the tracker keeps a set); the parent stays the only
owner and unlinks each segment exactly once.
"""

from __future__ import annotations

import pickle
import struct
from array import array
from dataclasses import dataclass
from multiprocessing import shared_memory

from repro.engine.table import Table

try:  # optional fast decode rung, mirroring the compiled-kernel ladder
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in CI
    _np = None

_LEN = struct.Struct("<Q")


@dataclass(frozen=True)
class ShmRef:
    """A picklable handle to one encoded table."""

    name: str
    size: int


def _encode_column(values: list) -> tuple[str, bytes]:
    """``(encoding, payload)`` for one column; fixed-width when possible."""
    if values and all(
        type(v) is int  # bools are ints; keep them in the pickle rung
        for v in values
    ):
        try:
            return "i8", array("q", values).tobytes()
        except OverflowError:
            pass  # unbounded Python ints: fall through to the pickle rung
    if values and all(type(v) is float for v in values):
        return "f8", array("d", values).tobytes()
    return "pkl", pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_column(encoding: str, payload: memoryview) -> list:
    if encoding == "i8":
        if _np is not None:
            return _np.frombuffer(payload, dtype="<i8").tolist()
        out = array("q")
        out.frombytes(payload)
        return out.tolist()
    if encoding == "f8":
        if _np is not None:
            return _np.frombuffer(payload, dtype="<f8").tolist()
        out = array("d")
        out.frombytes(payload)
        return out.tolist()
    return pickle.loads(payload)


def encode_table(table: Table) -> tuple[ShmRef, shared_memory.SharedMemory]:
    """Write ``table`` into a fresh shared-memory segment.

    Returns the reference to ship plus the segment itself; the caller owns
    the segment and must ``close()`` and ``unlink()`` it when the workers
    are done (the backend does this at the next run start / at close).
    """
    columns = [
        (attr, *_encode_column(list(table.column(attr))))
        for attr in table.attrs
    ]
    meta = pickle.dumps(
        {
            "num_rows": table.num_rows,
            "columns": [
                (attr, encoding, len(payload))
                for attr, encoding, payload in columns
            ],
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    total = _LEN.size + len(meta) + sum(len(p) for _, _, p in columns)
    segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
    buf = segment.buf
    buf[: _LEN.size] = _LEN.pack(len(meta))
    offset = _LEN.size
    buf[offset : offset + len(meta)] = meta
    offset += len(meta)
    for _, _, payload in columns:
        buf[offset : offset + len(payload)] = payload
        offset += len(payload)
    return ShmRef(name=segment.name, size=total), segment


def attach_table(ref: ShmRef) -> Table:
    """Attach a worker-side segment and decode it back into a table.

    The data is copied out into plain lists, so the segment is closed
    before returning (the parent remains the only owner).
    """
    segment = shared_memory.SharedMemory(name=ref.name)
    try:
        buf = memoryview(segment.buf)
        try:
            (meta_len,) = _LEN.unpack(bytes(buf[: _LEN.size]))
            offset = _LEN.size
            meta = pickle.loads(bytes(buf[offset : offset + meta_len]))
            offset += meta_len
            columns: dict[str, list] = {}
            for attr, encoding, nbytes in meta["columns"]:
                columns[attr] = _decode_column(
                    encoding, buf[offset : offset + nbytes]
                )
                offset += nbytes
        finally:
            buf.release()
    finally:
        segment.close()
    if not columns:
        return Table.empty(())
    return Table.wrap(columns)


__all__ = ["ShmRef", "attach_table", "encode_table"]
