"""Shard planning for the multiprocess backend.

One block execution becomes ``k`` worker tasks.  The planner picks, per
block, how the input tables are split so that the per-shard observations
recompose *exactly* into the whole-table statistics:

``broadcast``
    The **spine** (largest base table) is cut into contiguous row ranges;
    every other input is replicated into each worker.  Row-local steps
    (filter / transform / project) commute with row sharding, so every
    plan point whose sub-expression contains the spine is a disjoint
    decomposition across shards -- counts and histogram buckets merge
    additively, distinct values merge by set union.  Points *without* the
    spine (a broadcast input's stages, a join of two broadcast subtrees)
    are computed identically in every worker; only shard 0 reports them.

``hash``
    Both inputs of a two-way step-free join are partitioned on the join
    key with a process-stable hash: every row lands in exactly one shard
    and co-located keys join completely there, so *every* point decomposes
    disjointly.  Chosen when the smaller input exceeds the broadcast
    threshold from :data:`repro.estimation.physical.DIST_COST_FACTORS`.

``single``
    One whole-table shard (shard count 1).  The correctness fallback for
    shapes row sharding cannot decompose: several inputs reading the same
    base table (a self-join would shard both occurrences at once).

The reject links of a join are never merged additively by the workers;
:func:`reject_join_keys` gives the parent (and workers) the key columns
needed to recompose them -- concatenation for a sharded probe/build side,
key-set intersection for a replicated one (a build row is globally
unmatched only if *no* shard matched its key).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.algebra.blocks import Block
from repro.algebra.expressions import AnySE, RejectSE, SubExpression
from repro.algebra.plans import JoinNode, Leaf, PlanTree
from repro.engine.table import Table


@dataclass(frozen=True)
class ShardPlan:
    """How one block's inputs are split across ``shards`` workers."""

    strategy: str  # "broadcast" | "hash" | "single"
    shards: int
    spine: str | None = None  # broadcast: the sharded input's name
    key: tuple[str, ...] = ()  # hash: the partitioning join key


def plan_block_shards(
    block: Block,
    tree: PlanTree,
    env: dict[str, Table],
    shards: int,
    factors: dict[str, float],
) -> ShardPlan:
    """Pick the shard strategy for one block from the dist cost factors.

    ``factors`` may be a partial override; anything missing falls back to
    :data:`repro.estimation.physical.DIST_COST_FACTORS`.
    """
    from repro.estimation.physical import DIST_COST_FACTORS

    factors = {**DIST_COST_FACTORS, **factors}
    sizes = {
        name: env[inp.base_name].num_rows
        for name, inp in block.inputs.items()
    }
    base_names = [inp.base_name for inp in block.inputs.values()]
    if shards <= 1:
        return ShardPlan(strategy="single", shards=1)
    if len(set(base_names)) < len(base_names):
        # two inputs over one base table: sharding the shared env entry
        # would shard both occurrences -- run whole-table instead
        return ShardPlan(strategy="single", shards=1)
    # deterministic spine: largest base table, name as the tie-break
    spine = max(sorted(sizes), key=lambda name: sizes[name])
    shards = _cap_shards(shards, sizes[spine], factors)
    if shards <= 1:
        return ShardPlan(strategy="single", shards=1)
    hash_key = _hash_partition_key(block, tree)
    if hash_key is not None:
        small = min(sizes.values())
        total = sum(sizes.values())
        broadcast_cost = (
            shards * factors["broadcast_build_factor"] * small
        )
        partition_cost = factors["partition_scan_factor"] * total
        if small > factors["broadcast_max_rows"] or (
            broadcast_cost > partition_cost
        ):
            return ShardPlan(strategy="hash", shards=shards, key=hash_key)
    return ShardPlan(strategy="broadcast", shards=shards, spine=spine)


def _cap_shards(shards: int, spine_rows: int, factors: dict[str, float]) -> int:
    """Keep at least ``min_shard_rows`` spine rows per worker.

    Dispatch and merge overhead dwarfs the work below that point, so tiny
    tables run on fewer shards (down to one).  A zero/absent factor
    disables the cap (the equivalence suites do this to exercise the
    multi-shard path on small fixtures).
    """
    floor = int(factors.get("min_shard_rows", 0))
    if floor <= 0:
        return shards
    return max(1, min(shards, spine_rows // floor))


def _hash_partition_key(block: Block, tree: PlanTree) -> tuple[str, ...] | None:
    """The join key to hash-partition on, or ``None`` if ineligible.

    Hash partitioning needs the key columns on the *base* tables (rows are
    routed before any step runs), so it only applies to a two-way join of
    step-free inputs.
    """
    if not isinstance(tree, JoinNode):
        return None
    if not (isinstance(tree.left, Leaf) and isinstance(tree.right, Leaf)):
        return None
    for inp in block.inputs.values():
        if inp.steps:
            return None
    return tuple(tree.key)


def shard_range(num_rows: int, shards: int, index: int) -> tuple[int, int]:
    """Contiguous row range ``[lo, hi)`` of shard ``index`` out of ``shards``.

    Ranges tile ``range(num_rows)`` in order (shard 0 first), sized within
    one row of each other; trailing shards may be empty for tiny tables.
    """
    base, extra = divmod(num_rows, shards)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


def stable_shard_of(values: tuple, shards: int) -> int:
    """Process-stable shard route for one key-value tuple.

    Built-in ``hash()`` is salted per process (``PYTHONHASHSEED``), so the
    route uses CRC-32 of the canonical repr instead -- identical in every
    worker and across runs.
    """
    payload = repr(values).encode("utf-8", "backslashreplace")
    return zlib.crc32(payload) % shards


def hash_partition_indexes(
    table: Table, key: tuple[str, ...], shards: int, index: int
) -> list[int]:
    """Row indexes of ``table`` routed to shard ``index``."""
    return [
        i
        for i, values in enumerate(table.rows(key))
        if stable_shard_of(values, shards) == index
    ]


def sharded_points(block: Block, tree: PlanTree, spine: str) -> set[AnySE]:
    """Plan points that decompose disjointly under broadcast sharding.

    Everything whose sub-expression contains the spine: the spine input's
    stage chain, every join node joining the spine's subtree, and the post
    steps (the block output always contains every input).  The complement
    is replicated -- identical in every worker, reported by shard 0 only.
    """
    points: set[AnySE] = set()
    for stage in block.inputs[spine].stage_names():
        points.add(SubExpression.of(stage))

    def walk(node: PlanTree) -> None:
        if isinstance(node, JoinNode):
            if spine in node.se.relations:
                points.add(node.se)
            walk(node.left)
            walk(node.right)

    walk(tree)
    points.update(block.post_stage_ses())
    return points


def reject_join_keys(tree: PlanTree) -> dict[RejectSE, tuple[str, ...]]:
    """Every reject link the tree can produce, mapped to its join key."""
    mapping: dict[RejectSE, tuple[str, ...]] = {}

    def walk(node: PlanTree) -> None:
        if not isinstance(node, JoinNode):
            return
        key = tuple(node.key)
        rej_key = key[0] if len(key) == 1 else key
        mapping[RejectSE(node.left.se, rej_key, node.right.se)] = key
        mapping[RejectSE(node.right.se, rej_key, node.left.se)] = key
        walk(node.left)
        walk(node.right)

    walk(tree)
    return mapping


def reject_is_sharded(rej: RejectSE, plan: ShardPlan) -> bool:
    """Whether this reject link's rows land in disjoint shards (concat)
    or replicated ones (key-set intersection, rows from shard 0)."""
    if plan.strategy == "hash":
        return True
    if plan.strategy == "broadcast":
        return plan.spine in rej.source.relations
    return True  # single: trivially exact


def concat_tables(tables: "list[Table]") -> Table:
    """Concatenate shard outputs in shard order (columns by name).

    Every shard reports an output table (possibly zero-row), so an empty
    list means the dispatch lost results -- better a loud error than an
    empty table silently entering the environment.
    """
    tables = [t for t in tables if t is not None]
    if not tables:
        raise ValueError("concat_tables needs at least one shard output")
    attrs = tables[0].attrs
    columns: dict[str, list] = {a: [] for a in attrs}
    for table in tables:
        for a in attrs:
            columns[a].extend(table.column(a))
    return Table.wrap(columns)


__all__ = [
    "ShardPlan",
    "concat_tables",
    "hash_partition_indexes",
    "plan_block_shards",
    "reject_is_sharded",
    "reject_join_keys",
    "shard_range",
    "sharded_points",
    "stable_shard_of",
]
