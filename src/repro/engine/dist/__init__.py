"""Multi-process sharded execution (the ``multiprocess`` backend).

Splits each block's input tables into row shards, executes the shards in
a pool of forked worker processes over shared-memory columnar buffers,
and merges the per-shard tap observations back into exact whole-table
statistics.  See :mod:`repro.engine.dist.sharding` for the shard-strategy
math, :mod:`repro.engine.dist.worker` for the in-worker execution path,
and :mod:`repro.engine.dist.backend` for the orchestrating
:class:`MultiprocessBackend`.
"""

from repro.engine.dist.backend import MultiprocessBackend, ShardExecutionError
from repro.engine.dist.sharding import ShardPlan, plan_block_shards
from repro.engine.dist.worker import ShardResult, WorkerState

__all__ = [
    "MultiprocessBackend",
    "ShardExecutionError",
    "ShardPlan",
    "ShardResult",
    "WorkerState",
    "plan_block_shards",
]
