"""Worker-process side of the multiprocess backend.

A worker executes **one shard of one block** per task: it slices its input
tables according to the block's :class:`~repro.engine.dist.sharding
.ShardPlan`, runs the ordinary columnar interpreter (or a compiled plan
from a per-process :class:`~repro.engine.compile.PlanCache`) over the
slice with a *mergeable* tap set, strips the observation points it is not
responsible for, and ships back a compact :class:`ShardResult` the parent
folds together.

Big tables never travel through the task pickle.  The pool is forked, so
every worker inherits :data:`_STATE` -- the analysis (whose step
predicates and UDFs are plain Python functions, unpicklable by design)
and the fork-time source tables -- for free; only tables created *after*
the fork (screened sources, upstream block outputs) arrive as
:class:`~repro.engine.dist.shm.ShmRef` handles into shared memory, decoded
once per process and cached by segment name.

Fault directives from the run's injector ride along in the payload:
``worker-kill`` hard-exits the process (the parent sees a broken pool and
retries the shard), ``worker-hang`` stalls past the parent's shard
timeout.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass
from typing import Any

from repro.algebra.blocks import Block, BlockAnalysis
from repro.algebra.expressions import AnySE, RejectSE
from repro.algebra.plans import PlanTree
from repro.engine.backend import RunContext, WorkflowRun
from repro.engine.dist.sharding import (
    ShardPlan,
    hash_partition_indexes,
    reject_is_sharded,
    reject_join_keys,
    shard_range,
    sharded_points,
)
from repro.engine.dist.shm import ShmRef, attach_table
from repro.engine.instrumentation import TapSet
from repro.engine.table import Table


class ShardError(RuntimeError):
    """A shard failed inside a worker (re-raised in the parent)."""


@dataclass
class WorkerState:
    """Everything a worker inherits through the fork.

    Built in the parent immediately before the pool is created;
    :func:`set_fork_state` publishes it as a module global so the forked
    children see it without any pickling (the analysis holds lambdas).
    """

    analysis: BlockAnalysis
    env: dict[str, Table]
    stats: tuple
    compile_plans: bool = False


@dataclass
class ShardResult:
    """One shard's contribution, shaped for an exact parent-side merge."""

    shard: int
    taps: TapSet
    sizes: dict[AnySE, int]
    #: reject link -> {"sharded", "attrs", "columns"?, "keys"?}
    rejects: dict[RejectSE, dict]
    output_attrs: tuple[str, ...]
    output_columns: dict[str, list]
    rows_out: int


# -- per-process state -----------------------------------------------------
_STATE: WorkerState | None = None
_PLAN_CACHE = None  # compiled programs, reused across runs in this process
_TABLE_CACHE: dict[str, Table] = {}  # decoded shm tables by segment name
_RUN_TOKEN: Any = None


def set_fork_state(state: "WorkerState | None") -> None:
    """Publish the fork-inherited state (parent side, pre-fork)."""
    global _STATE
    _STATE = state
    _TABLE_CACHE.clear()


def _begin_task(payload: dict) -> None:
    """Per-run cache upkeep, run once when a new run token appears."""
    global _RUN_TOKEN, _PLAN_CACHE
    token = payload.get("run_token")
    if token == _RUN_TOKEN:
        return
    _RUN_TOKEN = token
    _TABLE_CACHE.clear()  # segments from the previous run are unlinked
    if _PLAN_CACHE is not None:
        for source in payload.get("invalidate_sources", ()):
            _PLAN_CACHE.invalidate_source(source)


def _maybe_fault(directive: "dict | None") -> None:
    """Apply an injected shard fault (see :mod:`repro.engine.faults`)."""
    if not directive:
        return
    kind = directive.get("kind")
    if kind == "worker-kill":
        # abrupt death, not an exception: the parent must observe a broken
        # pool exactly as it would for a real crash/OOM kill
        os._exit(3)
    if kind == "worker-hang":
        time.sleep(max(float(directive.get("delay", 0.0)), 0.05))


def _attach(ref: ShmRef) -> Table:
    table = _TABLE_CACHE.get(ref.name)
    if table is None:
        table = attach_table(ref)
        _TABLE_CACHE[ref.name] = table
    return table


def _resolve(base_name: str, overrides: dict[str, ShmRef], state: WorkerState) -> Table:
    ref = overrides.get(base_name)
    if ref is not None:
        return _attach(ref)
    try:
        return state.env[base_name]
    except KeyError:
        raise ShardError(
            f"worker has no table for input {base_name!r} (not in the fork "
            "snapshot and no shared-memory override shipped)"
        ) from None


def _block_named(analysis: BlockAnalysis, name: str) -> Block:
    for block in analysis.blocks:
        if block.name == name:
            return block
    raise ShardError(f"worker analysis has no block named {name!r}")


def _compiled_runner(state: WorkerState, block: Block, tree: PlanTree,
                     context_tokens: "dict | None"):
    """Compile (or fetch from this process's cache) the block's program."""
    global _PLAN_CACHE
    from repro.engine.compile import (
        CompiledBlockRunner,
        PlanCache,
        compile_blocks,
        make_engine,
    )
    from repro.engine.executor import ColumnarBackend

    if _PLAN_CACHE is None:
        _PLAN_CACHE = PlanCache()
    profile = ColumnarBackend().compiled_profile()
    compiled = compile_blocks(
        state.analysis,
        {block.name: tree},
        backend="columnar",
        profile=profile,
        cache=_PLAN_CACHE,
        context_tokens=context_tokens,
    )
    program = compiled.get(block.name)
    if program is None:
        return None
    return CompiledBlockRunner(program, block, profile, make_engine(profile.gather))


def _shard_env(block: Block, plan: ShardPlan, shard: int,
               overrides: dict[str, ShmRef], state: WorkerState) -> dict[str, Table]:
    """The worker's slice of the block's input tables."""
    env: dict[str, Table] = {}
    for inp in block.inputs.values():
        if inp.base_name not in env:
            env[inp.base_name] = _resolve(inp.base_name, overrides, state)
    if plan.strategy == "broadcast":
        base = block.inputs[plan.spine].base_name
        table = env[base]
        lo, hi = shard_range(table.num_rows, plan.shards, shard)
        env[base] = table.take(range(lo, hi))
    elif plan.strategy == "hash":
        for inp in block.inputs.values():
            table = env[inp.base_name]
            env[inp.base_name] = table.take(
                hash_partition_indexes(table, plan.key, plan.shards, shard)
            )
    return env


def pool_ping() -> int:
    """Warmup/liveness probe: forces an eager fork and proves the worker
    can execute (returns its pid)."""
    return os.getpid()


def run_shard(payload: dict, state: "WorkerState | None" = None) -> ShardResult:
    """Pool entry point: execute one shard of one block.

    ``payload`` carries only small picklable things -- block *name*, join
    tree, shard plan, shm refs -- everything heavy comes from the fork
    snapshot or shared memory.  ``state`` is injected directly in inline
    (single-process) mode.
    """
    state = state if state is not None else _STATE
    if state is None:
        raise ShardError("worker has no fork state; pool started incorrectly")
    spec = payload.get("sketch")
    if spec is not None:
        # follow the parent's distinct-accumulator configuration even on
        # a warm pool forked under a different spec
        from repro.estimation.sketches import configure_sketches

        configure_sketches(spec)
    _begin_task(payload)
    _maybe_fault(payload.get("fault"))
    block = _block_named(state.analysis, payload["block"])
    tree: PlanTree = payload["tree"]
    plan: ShardPlan = payload["plan"]
    shard: int = payload["shard"]

    env = _shard_env(block, plan, shard, payload.get("overrides", {}), state)
    taps = TapSet(state.stats, mergeable=True)
    run = WorkflowRun(env=env)
    from repro.engine.executor import ColumnarBackend

    backend = ColumnarBackend()
    ctx = RunContext(run=run, taps=taps, kernels=backend.make_kernels())
    runner = None
    if state.compile_plans:
        runner = _compiled_runner(state, block, tree, payload.get("context_tokens"))
    if runner is not None:
        out = runner.execute(ctx)
    else:
        out = backend.execute_block(block, tree, ctx)

    # -- responsibility filter ------------------------------------------
    # Broadcast shards all compute the replicated points identically;
    # only shard 0 reports them.  Reject links are never reported from a
    # worker tap set -- the parent re-observes them from merged tables.
    responsible: "set[AnySE] | None" = None
    if plan.strategy == "broadcast" and shard > 0:
        responsible = sharded_points(block, tree, plan.spine)
    drop: set[AnySE] = set(run.rejects)
    if responsible is not None:
        drop |= {se for se in run.se_sizes if se not in responsible}
    sizes = {se: n for se, n in run.se_sizes.items() if se not in drop}
    taps.discard_points(drop)

    keymap = reject_join_keys(tree)
    rejects: dict[RejectSE, dict] = {}
    for rej, table in run.rejects.items():
        sharded = reject_is_sharded(rej, plan)
        entry: dict = {"sharded": sharded, "attrs": table.attrs}
        if sharded or shard == 0:
            entry["columns"] = {a: list(table.column(a)) for a in table.attrs}
        if not sharded:
            entry["keys"] = set(table.rows(keymap[rej]))
        rejects[rej] = entry

    return ShardResult(
        shard=shard,
        taps=taps,
        sizes=sizes,
        rejects=rejects,
        output_attrs=out.attrs,
        output_columns={a: list(out.column(a)) for a in out.attrs},
        rows_out=out.num_rows,
    )


def screen_shard(payload: dict, state: "WorkerState | None" = None) -> list:
    """Pool entry point: contract-check one row range of one source.

    Returns the shard's :class:`~repro.quality.quarantine.Violation` list
    with rows **re-keyed to global row ids** (the parent partitions the
    full table once from the union, so dead-letter contents and exclusion
    fingerprints are byte-identical to an unsharded run).
    """
    from repro.quality.contracts import validate_rows

    _begin_task(payload)
    table = _attach(payload["table"])
    lo, hi = payload["range"]
    part = table.take(range(lo, hi))
    _clean, _dead, violations = validate_rows(
        part, payload["contract"], source=payload["source"]
    )
    return [dataclasses.replace(v, row=v.row + lo) for v in violations]


__all__ = [
    "ShardError",
    "ShardResult",
    "WorkerState",
    "run_shard",
    "screen_shard",
    "set_fork_state",
]
