"""The multiprocess execution backend: sharded blocks, exact merged taps.

:class:`MultiprocessBackend` keeps the engine's observable contract --
row-identical tap observations, SE sizes, reject tables and quarantine
output versus a single-process columnar run -- while executing each block
as ``k`` shard tasks in a pool of forked worker processes:

1. :meth:`begin_run` snapshots the analysis and fork-time sources into
   the workers (fork inheritance; step predicates are lambdas and never
   pickle), then forks the pool.
2. :meth:`screen_sources` contract-checks row ranges in parallel and
   re-keys per-shard violations to global row ids, so the dead-letter
   store and exclusion fingerprints match an unsharded run byte for byte.
3. :meth:`execute_block` plans a shard strategy per block
   (:func:`~repro.engine.dist.sharding.plan_block_shards`), ships
   post-fork tables through shared memory, dispatches the shards (with
   injected worker faults, a per-shard timeout and bounded retries over a
   rebuilt pool), and folds the :class:`~repro.engine.dist.worker
   .ShardResult` pieces back together: mergeable tap sets merge
   additively, SE sizes sum, reject tables recompose by concatenation or
   key-set intersection, and the parent re-observes every reject so the
   run's taps are exact.

Retries that exhaust ``shard_retries`` surface as a *transient*
:class:`ShardExecutionError`, so a scheduler retry policy treats a dead
pool like any other transient block failure (and the skip cascade, chaos
reports and clean-baseline re-plan all behave identically).
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

from repro.algebra.blocks import Block, BlockAnalysis
from repro.algebra.expressions import AnySE, RejectSE
from repro.algebra.plans import PlanTree
from repro.core.statistics import StatisticsStore
from repro.engine.backend import ExecutionBackend, RunContext
from repro.engine.dist.sharding import (
    ShardPlan,
    plan_block_shards,
    reject_join_keys,
    shard_range,
)
from repro.engine.dist.shm import ShmRef, encode_table
from repro.engine.dist.worker import (
    ShardResult,
    WorkerState,
    pool_ping,
    run_shard,
    screen_shard,
    set_fork_state,
)
from repro.engine.faults import TransientFault
from repro.engine.instrumentation import TapSet
from repro.engine.table import Table
from repro.estimation.physical import DIST_COST_FACTORS
from repro.estimation.sketches import active_sketch_spec


class ShardExecutionError(RuntimeError):
    """A shard could not be completed within the retry budget.

    Marked ``transient`` so the scheduler's error classification lets a
    block-level retry policy rebuild the pool and try again.
    """

    transient = True


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


class MultiprocessBackend(ExecutionBackend):
    """Sharded execution over a pool of forked worker processes."""

    name = "multiprocess"

    def __init__(
        self,
        shards: "int | None" = None,
        *,
        inline: "bool | None" = None,
        shard_timeout: float = 60.0,
        shard_retries: int = 2,
        factors: "dict[str, float] | None" = None,
    ):
        if shards is None:
            shards = max(1, min(4, os.cpu_count() or 1))
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = int(shards)
        #: ``True`` runs shards in-process (no pool): deterministic, used
        #: on platforms without fork and by tests that want the sharding
        #: math without process management.  ``None`` = auto.
        self.inline = (not _fork_available()) if inline is None else bool(inline)
        self.shard_timeout = float(shard_timeout)
        self.shard_retries = int(shard_retries)
        self.factors = {**DIST_COST_FACTORS, **(factors or {})}

        self._lock = threading.RLock()
        self._pool: "ProcessPoolExecutor | None" = None
        self._analysis: "BlockAnalysis | None" = None
        self._fork_env: dict[str, Table] = {}
        self._stats: tuple = ()
        self._compile = False
        self._context_tokens: "dict | None" = None
        self._run_token = 0
        #: (table, ref, segment) triples kept alive until the next run:
        #: the table pins its id() (the override-cache key) and the parent
        #: owns every segment it created
        self._segments: list = []
        self._shm_refs: dict[int, ShmRef] = {}
        self._atexit_registered = False

    # ------------------------------------------------------------------
    # ExecutionBackend protocol
    # ------------------------------------------------------------------
    def make_taps(self, stats=()):
        return TapSet(stats)

    def collect(self, taps: TapSet) -> StatisticsStore:
        return taps.store

    def compiled_profile(self):
        # the parent never runs compiled programs itself: each worker
        # compiles against its own per-process PlanCache (see worker.py)
        return None

    def begin_run(self, analysis, sources, taps, compile_plans) -> None:
        with self._lock:
            self._run_token += 1
            self._drop_segments()
            stats = tuple(getattr(taps, "requested", ()) or ())
            reusable = (
                self._pool is not None
                and self._analysis is analysis
                and self._stats == stats
                and self._compile == bool(compile_plans)
            )
            self._analysis = analysis
            self._stats = stats
            self._compile = bool(compile_plans)
            self._context_tokens = None
            if reusable:
                # same workflow, warm pool: tables that changed since the
                # fork ship via shared memory, the plan caches stay hot
                return
            self._shutdown_pool()
            self._fork_env = dict(sources)
            if not self.inline:
                self._start_pool()

    def screen_sources(self, quality, sources, *, tracer=None, trace_parent=None):
        with self._lock:
            self._context_tokens = _contract_tokens(quality)
        out = dict(sources)
        trace = tracer is not None and tracer.enabled
        from repro.quality.drift import reconcile_schema

        for name in sorted(sources):
            contract = quality.contracts.get(name)
            if contract is None:
                continue
            table, events = reconcile_schema(
                sources[name], contract, quality.policy, source=name
            )
            violations = self._shard_violations(table, contract, name)
            bad = sorted({v.row for v in violations})
            if bad:
                dead, clean = table.partition(bad)
            else:
                clean, dead = table, Table.empty(table.attrs)
            quality.quarantine.add(name, dead, violations, events)
            out[name] = clean
            if trace:
                tracer.point(
                    name,
                    kind="quarantine",
                    parent=trace_parent,
                    rows=clean.num_rows,
                    quarantined=dead.num_rows,
                    violations=len(violations),
                    schema_drift=len(events),
                )
        return out

    def execute_block(self, block: Block, tree: PlanTree, ctx: RunContext) -> Table:
        with self._lock:
            plan = plan_block_shards(
                block, tree, ctx.run.env, self.shards, self.factors
            )
            payloads = [
                self._payload(block, tree, plan, shard, ctx)
                for shard in range(plan.shards)
            ]
            results, retries = self._dispatch(block, plan, payloads, ctx)
        return self._merge(block, tree, plan, results, retries, ctx)

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _start_pool(self) -> None:
        import multiprocessing

        try:
            # make sure the shared-memory resource tracker exists *before*
            # the fork: every worker then inherits it, so attach-side
            # registrations dedup against the parent's (see dist/shm.py)
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        set_fork_state(
            WorkerState(
                analysis=self._analysis,
                env=self._fork_env,
                stats=self._stats,
                compile_plans=self._compile,
            )
        )
        self._pool = ProcessPoolExecutor(
            max_workers=self.shards,
            mp_context=multiprocessing.get_context("fork"),
        )
        # eager fork while the parent is still single-threaded, and a
        # fail-fast proof that a worker can actually execute
        self._pool.submit(pool_ping).result(timeout=max(self.shard_timeout, 10.0))
        if not self._atexit_registered:
            atexit.register(self.close)
            self._atexit_registered = True

    def _reset_pool(self) -> None:
        """Tear down a broken/hung pool and fork a fresh one."""
        self._shutdown_pool(kill=True)
        if not self.inline:
            self._start_pool()

    def _shutdown_pool(self, kill: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            try:  # hung workers never drain the queue: terminate them
                for proc in list(getattr(pool, "_processes", {}).values()):
                    proc.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=not kill, cancel_futures=True)
        except Exception:
            pass

    def close(self) -> None:
        """Release the pool and every shared-memory segment."""
        with self._lock:
            self._shutdown_pool(kill=True)
            self._drop_segments()
            set_fork_state(None)

    def _drop_segments(self) -> None:
        segments, self._segments = self._segments, []
        self._shm_refs = {}
        for _table, _ref, segment in segments:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # payload construction
    # ------------------------------------------------------------------
    def _table_ref(self, table: Table) -> ShmRef:
        """Encode a post-fork table once; reuse the segment across shards."""
        ref = self._shm_refs.get(id(table))
        if ref is None:
            ref, segment = encode_table(table)
            self._segments.append((table, ref, segment))
            self._shm_refs[id(table)] = ref
        return ref

    def _payload(
        self,
        block: Block,
        tree: PlanTree,
        plan: ShardPlan,
        shard: int,
        ctx: RunContext,
    ) -> dict:
        overrides: dict[str, ShmRef] = {}
        if not self.inline:
            for inp in block.inputs.values():
                base = inp.base_name
                if base in overrides:
                    continue
                current = ctx.run.env[base]
                if current is not self._fork_env.get(base):
                    overrides[base] = self._table_ref(current)
        return {
            "run_token": self._run_token,
            "block": block.name,
            "tree": tree,
            "plan": plan,
            "shard": shard,
            "overrides": overrides,
            # the parent's sketch configuration rides along so a warm
            # pool (forked under an older spec) builds its mergeable
            # distinct accumulators exactly like the parent expects
            "sketch": active_sketch_spec(),
            "context_tokens": self._context_tokens,
            "invalidate_sources": tuple(
                sorted({e.source for e in ctx.run.schema_drift})
            ),
            "fault": None,  # filled at dispatch time, per attempt
        }

    # ------------------------------------------------------------------
    # dispatch + retry
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        block: Block,
        plan: ShardPlan,
        payloads: list[dict],
        ctx: RunContext,
    ) -> "tuple[dict[int, ShardResult], int]":
        results: dict[int, ShardResult] = {}
        attempts = dict.fromkeys(range(plan.shards), 0)
        retries = 0
        pending = list(range(plan.shards))
        while pending:
            failed: list[int] = []
            for shard in pending:
                attempts[shard] += 1
                if attempts[shard] > 1:
                    retries += 1
            if self.inline:
                state = WorkerState(
                    analysis=self._analysis,
                    env=ctx.run.env,
                    stats=self._stats,
                    compile_plans=self._compile,
                )
                for shard in pending:
                    try:
                        self._inline_fault(block, shard, ctx)
                        results[shard] = run_shard(payloads[shard], state)
                    except TransientFault:
                        failed.append(shard)
            else:
                futures = {}
                pool_down = False
                for shard in pending:
                    payload = dict(payloads[shard])
                    payload["fault"] = self._fault_directive(block, shard, ctx)
                    try:
                        futures[shard] = self._pool.submit(run_shard, payload)
                    except BrokenProcessPool:
                        # a worker died *between submits* (e.g. an earlier
                        # shard's kill landed before this one went out):
                        # fail the shard into the retry round instead of
                        # letting the broken pool escape the dispatcher
                        failed.append(shard)
                        pool_down = True
                for shard, future in futures.items():
                    try:
                        # after the pool broke/hung, still harvest shards
                        # that finished before the crash (timeout 0)
                        timeout = 0.0 if pool_down else self.shard_timeout
                        results[shard] = future.result(timeout=timeout)
                    except FutureTimeoutError:
                        # hung worker (or undelivered after a break)
                        failed.append(shard)
                        pool_down = True
                    except BrokenProcessPool:
                        # a worker died abruptly (kill/OOM/crash)
                        failed.append(shard)
                        pool_down = True
                    # any other exception is an application error raised
                    # inside the worker: propagate it exactly like the
                    # single-process backends so the scheduler classifies
                    # the real error type
                if pool_down:
                    self._reset_pool()
            exhausted = [
                shard
                for shard in failed
                if attempts[shard] > self.shard_retries
            ]
            if exhausted:
                raise ShardExecutionError(
                    f"block {block.name!r}: shards {exhausted} failed after "
                    f"{self.shard_retries + 1} attempts"
                )
            pending = failed
        return results, retries

    def _fault_directive(self, block: Block, shard: int, ctx: RunContext):
        injector = ctx.injector
        if injector is None:
            return None
        spec = injector.on_shard(block.name, shard)
        if spec is None:
            return None
        return {"kind": spec.kind, "delay": spec.delay}

    def _inline_fault(self, block: Block, shard: int, ctx: RunContext) -> None:
        """Inline mode cannot kill a process; simulate the outcome."""
        directive = self._fault_directive(block, shard, ctx)
        if directive is None:
            return
        if directive["kind"] == "worker-hang":
            import time

            time.sleep(min(float(directive.get("delay", 0.0)), 0.05))
        raise TransientFault(
            f"injected {directive['kind']} on {block.name} shard {shard}"
        )

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def _merge(
        self,
        block: Block,
        tree: PlanTree,
        plan: ShardPlan,
        results: "dict[int, ShardResult]",
        retries: int,
        ctx: RunContext,
    ) -> Table:
        ordered = [results[shard] for shard in range(plan.shards)]

        # measured before folding: what the shards actually shipped
        sketch_bytes = sum(r.taps.distinct_bytes() for r in ordered)
        merged = ordered[0].taps
        for result in ordered[1:]:
            merged.merge(result.taps)
        sizes: dict[AnySE, int] = {}
        for result in ordered:
            for se, n in result.sizes.items():
                sizes[se] = sizes.get(se, 0) + n
        with ctx.lock:
            for stat, value in merged.store.items():
                ctx.taps.store.put(stat, value)
            ctx.run.se_sizes.update(sizes)
        if ctx.tracer is not None and ctx.tracer.enabled:
            ctx.trace_sizes(sizes)
            for result in ordered:
                ctx.tracer.point(
                    f"{block.name}#shard{result.shard}",
                    kind="shard",
                    rows=result.rows_out,
                    strategy=plan.strategy,
                )

        for rej, table in self._merge_rejects(tree, plan, ordered).items():
            ctx.note_reject(rej, table)

        out_columns: dict[str, list] = {
            a: list(ordered[0].output_columns[a]) for a in ordered[0].output_attrs
        }
        for result in ordered[1:]:
            for a in ordered[0].output_attrs:
                out_columns[a].extend(result.output_columns[a])
        out = (
            Table.wrap(out_columns)
            if out_columns
            else Table.empty(ordered[0].output_attrs)
        )

        self._record_shard_stats(
            block, plan, ordered, retries, ctx, out.num_rows, sketch_bytes
        )
        return out

    def _merge_rejects(
        self, tree: PlanTree, plan: ShardPlan, ordered: "list[ShardResult]"
    ) -> dict[RejectSE, Table]:
        """Recompose each reject link's whole-table rows from the shards."""
        keymap = reject_join_keys(tree)
        out: dict[RejectSE, Table] = {}
        for rej, first in ordered[0].rejects.items():
            attrs = first["attrs"]
            if first["sharded"]:
                columns: dict[str, list] = {a: [] for a in attrs}
                for result in ordered:
                    part = result.rejects[rej]["columns"]
                    for a in attrs:
                        columns[a].extend(part[a])
            else:
                # replicated side: a row is globally rejected only if every
                # shard rejected its key (it matched no shard's rows)
                rejected = set(first.get("keys", ()))
                for result in ordered[1:]:
                    rejected &= result.rejects[rej]["keys"]
                base = first["columns"]
                key = keymap[rej]
                key_rows = list(zip(*(base[a] for a in key))) if base[key[0]] else []
                keep = [
                    i for i, values in enumerate(key_rows) if values in rejected
                ]
                columns = {a: [base[a][i] for i in keep] for a in attrs}
            out[rej] = (
                Table.wrap(columns) if attrs else Table.empty(attrs)
            )
        return out

    def _record_shard_stats(
        self,
        block: Block,
        plan: ShardPlan,
        ordered: "list[ShardResult]",
        retries: int,
        ctx: RunContext,
        rows_out: int,
        sketch_bytes: int = 0,
    ) -> None:
        shm_bytes = sum(ref.size for _t, ref, _s in self._segments)
        with ctx.lock:
            stats = ctx.run.shard_stats
            stats["shards"] = max(stats.get("shards", 0), plan.shards)
            stats["blocks"] = stats.get("blocks", 0) + 1
            stats["tasks"] = stats.get("tasks", 0) + len(ordered)
            stats["retries"] = stats.get("retries", 0) + retries
            stats["rows_out"] = stats.get("rows_out", 0) + rows_out
            stats["sketch_bytes"] = stats.get("sketch_bytes", 0) + sketch_bytes
            stats["shm_bytes"] = shm_bytes
            key = f"strategy_{plan.strategy}"
            stats[key] = stats.get(key, 0) + 1

    # ------------------------------------------------------------------
    # sharded screening
    # ------------------------------------------------------------------
    def _shard_violations(self, table: Table, contract, source: str) -> list:
        """Contract violations for the whole table, computed shard-wise.

        Workers validate disjoint row ranges and return violations re-keyed
        to global rows; ranges tile the table in order and each shard's
        list arrives sorted, so the concatenation equals the unsharded
        violation list exactly.
        """
        from repro.quality.contracts import validate_rows

        shards = min(self.shards, max(table.num_rows, 1))
        if shards <= 1 or table.num_rows == 0:
            _clean, _dead, violations = validate_rows(table, contract, source=source)
            return violations
        ranges = [shard_range(table.num_rows, shards, i) for i in range(shards)]
        if self.inline or self._pool is None:
            collected = []
            for lo, hi in ranges:
                collected.extend(
                    _inline_screen(
                        table,
                        {"range": (lo, hi), "contract": contract, "source": source},
                    )
                )
        else:
            ref = self._table_ref(table)
            futures = [
                self._pool.submit(
                    screen_shard,
                    {
                        "run_token": self._run_token,
                        "table": ref,
                        "range": (lo, hi),
                        "contract": contract,
                        "source": source,
                    },
                )
                for lo, hi in ranges
            ]
            try:
                collected = [
                    v
                    for future in futures
                    for v in future.result(timeout=self.shard_timeout)
                ]
            except Exception:
                # a broken/hung pool during screening: rebuild it and fall
                # back to the (identical) single-process validation
                self._reset_pool()
                _clean, _dead, violations = validate_rows(
                    table, contract, source=source
                )
                return violations
        collected.sort(key=lambda v: (v.row, v.column, v.code))
        return collected


def _inline_screen(table: Table, payload: dict) -> list:
    """In-process version of :func:`~repro.engine.dist.worker.screen_shard`."""
    import dataclasses

    from repro.quality.contracts import validate_rows

    lo, hi = payload["range"]
    part = table.take(range(lo, hi))
    _clean, _dead, violations = validate_rows(
        part, payload["contract"], source=payload["source"]
    )
    return [dataclasses.replace(v, row=v.row + lo) for v in violations]


def _contract_tokens(quality) -> "dict | None":
    from repro.engine.backend import _contract_tokens as tokens

    try:
        return tokens(quality)
    except Exception:
        return None


__all__ = ["MultiprocessBackend", "ShardExecutionError"]
