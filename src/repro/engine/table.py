"""In-memory columnar tables: the record-sets the ETL engine moves around.

The paper's engine is DataStage; ours is a small columnar executor whose
only jobs are (a) running workflows faithfully enough to produce ground
truth, and (b) exposing per-tuple observation points for statistics
instrumentation (Section 3.2.5).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.histogram import Histogram


class TableError(ValueError):
    """Raised for malformed tables and invalid column access."""


class Table:
    """An immutable-by-convention columnar table."""

    __slots__ = ("attrs", "columns", "_nrows")

    def __init__(self, columns: dict[str, list]):
        if not columns:
            raise TableError("a table needs at least one column")
        lengths = {len(col) for col in columns.values()}
        if len(lengths) > 1:
            raise TableError(f"ragged columns: lengths {sorted(lengths)}")
        self.attrs = tuple(columns)
        # copy the column lists: sharing them with the caller would let
        # external mutation reach through the "immutable" table
        self.columns = {a: list(col) for a, col in columns.items()}
        self._nrows = next(iter(lengths))

    # ------------------------------------------------------------------
    @classmethod
    def wrap(cls, columns: dict[str, list]) -> "Table":
        """Trusted constructor: adopt the column lists without copying.

        For engine-internal call sites whose columns are freshly built (or
        owned by another table and never mutated); the public ``__init__``
        defensively copies instead.  Columns must be equal-length lists.
        """
        if not columns:
            raise TableError("a table needs at least one column")
        table = cls.__new__(cls)
        table.attrs = tuple(columns)
        table.columns = dict(columns)
        table._nrows = len(next(iter(columns.values())))
        return table

    @classmethod
    def from_rows(cls, attrs: Sequence[str], rows: Iterable[tuple]) -> "Table":
        attrs = tuple(attrs)
        columns: dict[str, list] = {a: [] for a in attrs}
        for row in rows:
            if len(row) != len(attrs):
                raise TableError(f"row {row!r} does not match attrs {attrs}")
            for a, v in zip(attrs, row):
                columns[a].append(v)
        return cls.wrap(columns)

    @classmethod
    def empty(cls, attrs: Sequence[str]) -> "Table":
        return cls.wrap({a: [] for a in attrs})

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._nrows

    def __len__(self) -> int:
        return self._nrows

    def column(self, attr: str) -> list:
        try:
            return self.columns[attr]
        except KeyError:
            raise TableError(
                f"no column {attr!r}; available: {self.attrs}"
            ) from None

    def has_column(self, attr: str) -> bool:
        return attr in self.columns

    def rows(self, attrs: Sequence[str] | None = None) -> Iterable[tuple]:
        attrs = tuple(attrs) if attrs is not None else self.attrs
        cols = [self.column(a) for a in attrs]
        return zip(*cols) if cols else iter(())

    def row_dicts(self) -> list[dict]:
        return [dict(zip(self.attrs, row)) for row in self.rows()]

    def take(self, indexes: Sequence[int]) -> "Table":
        return Table.wrap(
            {a: [col[i] for i in indexes] for a, col in self.columns.items()}
        )

    def partition(self, indexes: Sequence[int]) -> "tuple[Table, Table]":
        """Split into ``(rows at indexes, remaining rows)``, order kept.

        The quality gate's primitive: quarantined row indexes go left,
        surviving rows go right, each side preserving source order.
        """
        chosen = set(indexes)
        rest = [i for i in range(self._nrows) if i not in chosen]
        return self.take(sorted(chosen)), self.take(rest)

    def rename_columns(self, mapping: dict[str, str]) -> "Table":
        """A table with columns renamed per ``mapping`` (order preserved)."""
        renamed = {mapping.get(a, a): col for a, col in self.columns.items()}
        if len(renamed) != len(self.columns):
            raise TableError(
                f"column rename {mapping!r} collides with existing attrs "
                f"{self.attrs}"
            )
        return Table.wrap(renamed)

    def with_column(self, attr: str, values: list) -> "Table":
        if len(values) != self._nrows:
            raise TableError("new column length does not match table")
        columns = dict(self.columns)
        columns[attr] = list(values)
        return Table.wrap(columns)

    def select_columns(self, attrs: Sequence[str]) -> "Table":
        return Table.wrap({a: self.column(a) for a in attrs})

    def histogram(self, attrs: Sequence[str]) -> Histogram:
        """Exact frequency histogram over the given attributes."""
        return Histogram.from_rows(tuple(attrs), self.rows(attrs))

    def distinct_count(self, attrs: Sequence[str]) -> int:
        return len(set(self.rows(attrs)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self._nrows} rows, attrs={self.attrs})"
