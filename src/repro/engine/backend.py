"""Pluggable execution backends: one plan-walking core, many kernel sets.

The paper treats the ETL engine as a swappable component with fixed
observation points (Sections 3.2.5-3.2.6): the optimization framework only
needs *some* engine that executes the analyzed plan and fires the taps at
every plan point.  This module makes that explicit.  An
:class:`ExecutionBackend` owns

- the **physical operator kernels** (:class:`Kernels`): filter/transform/
  project steps, hash join, group-by, blocking UDFs;
- the **block execution strategy**: materialized column-at-a-time
  (columnar, vectorized) or per-tuple pipelined (streaming);
- the **instrumentation style**: table-level taps
  (:class:`~repro.engine.instrumentation.TapSet`) or per-tuple accumulators
  (:class:`~repro.engine.streaming.StreamingTaps`).

:class:`BackendExecutor` is the shared plan-walking core that used to be
duplicated between the columnar and streaming executors: it checks the
sources, turns blocks and boundaries into dependency tasks, runs them
through a :class:`~repro.engine.scheduler.ParallelScheduler` (serially by
default, concurrently with ``workers > 1``), applies boundary operators,
and collects the observations.

Backends register by name; :func:`get_backend` resolves ``"columnar"``,
``"streaming"`` and ``"vectorized"`` lazily so the framework, the CLI and
the benchmarks can thread a backend choice around as a plain string.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable

from repro.algebra.blocks import Block, BlockAnalysis, BoundaryOp
from repro.algebra.expressions import AnySE, RejectSE, SubExpression
from repro.algebra.operators import Aggregate, AggregateUDF, Materialize, Target
from repro.algebra.plans import PlanTree
from repro.core.statistics import StatisticsStore
from repro.engine import physical
from repro.engine.scheduler import (
    ParallelScheduler,
    RetryPolicy,
    RunFailure,
    SchedulerError,
    Task,
)
from repro.engine.table import Table, TableError


@dataclass
class WorkflowRun:
    """Everything a single execution produced.

    A fault-tolerant run (one given a retry policy or a fault injector)
    records failed and skipped tasks in ``failures`` instead of raising;
    ``resumed`` names the blocks restored from a checkpoint rather than
    executed.
    """

    env: dict[str, Table] = field(default_factory=dict)
    targets: dict[str, Table] = field(default_factory=dict)
    observations: StatisticsStore = field(default_factory=StatisticsStore)
    se_sizes: dict[AnySE, int] = field(default_factory=dict)
    rejects: dict[RejectSE, Table] = field(default_factory=dict)
    failures: dict[str, RunFailure] = field(default_factory=dict)
    resumed: tuple[str, ...] = ()
    #: source rows the quality gate diverted before execution (per source,
    #: non-empty dead-letter tables only); ``env`` holds the survivors, so
    #: every tap and ground-truth count excludes these rows by construction
    quarantined: dict[str, Table] = field(default_factory=dict)
    violations: list = field(default_factory=list)
    schema_drift: tuple = ()
    #: statistics restored from the checkpoint journal rather than observed
    #: tonight -- catalog reconciliation must not refresh their provenance
    #: as if they were fresh taps
    restored_statistics: frozenset = frozenset()
    #: sharded-backend bookkeeping (shard/task/retry counts, shm bytes);
    #: empty for single-process backends.  ``repro.obs`` turns these into
    #: ``etl_shard_*`` metrics
    shard_stats: dict = field(default_factory=dict)

    def target(self, name: str) -> Table:
        return self.targets[name]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def rows_quarantined(self) -> int:
        return sum(t.num_rows for t in self.quarantined.values())

    def failed_blocks(self, analysis: "BlockAnalysis") -> list[str]:
        """Names of optimizable blocks that failed or were skipped."""
        block_names = {b.name for b in analysis.blocks}
        return sorted(name for name in self.failures if name in block_names)


class Kernels:
    """Physical operator namespace a backend executes with.

    The base set is the row-at-a-time reference implementation from
    :mod:`repro.engine.physical`; the vectorized backend substitutes
    column-at-a-time kernels with the same signatures and semantics.
    A fresh instance is created per run (:meth:`ExecutionBackend
    .make_kernels`) so kernels may keep run-scoped state such as join
    build caches.
    """

    name = "reference"

    apply_step = staticmethod(physical.apply_step)
    hash_join = staticmethod(physical.hash_join)
    group_by = staticmethod(physical.group_by)
    apply_aggregate_udf = staticmethod(physical.apply_aggregate_udf)


@dataclass
class RunContext:
    """Per-run state shared by the core and the backend's block executor.

    ``lock`` serializes writes to the run-wide mutable maps when blocks
    execute on scheduler threads; ``state`` is backend scratch space
    (e.g. the streaming backend's claimed observation points).

    ``tracer`` (optional) records an instant *operator point* for every
    plan point a block materializes -- actual rows, the prior estimate
    from ``estimates`` when one exists (previous cycle or catalog), and
    whether a tap fired there.  Hot paths guard on ``tracer is None``,
    so an untraced run pays one attribute load and branch per point.
    """

    run: WorkflowRun
    taps: Any
    kernels: Kernels
    lock: threading.Lock = field(default_factory=threading.Lock)
    state: dict = field(default_factory=dict)
    tracer: Any = None
    estimates: "dict[AnySE, float] | None" = None
    #: the run's fault injector (or ``None``); sharding backends consult
    #: it for shard-scoped faults (worker kill/hang) at dispatch time
    injector: Any = None

    def note(self, se: AnySE, table: Table) -> None:
        """Record a plan point's size and fire the table-level taps."""
        with self.lock:
            self.run.se_sizes[se] = table.num_rows
            self.taps.observe(se, table)
        if self.tracer is not None and self.tracer.enabled:
            self.trace_point(se, table.num_rows)

    def note_reject(self, se: RejectSE, table: Table) -> None:
        with self.lock:
            self.run.rejects[se] = table
            self.run.se_sizes[se] = table.num_rows
            self.taps.observe(se, table)
        if self.tracer is not None and self.tracer.enabled:
            self.trace_point(se, table.num_rows, reject=True)

    # -- tracing -------------------------------------------------------
    def trace_point(self, se: AnySE, rows: int, **extra) -> None:
        """One operator point under the executing task's span."""
        attrs = {"rows": rows, **extra}
        if self.estimates is not None:
            estimate = self.estimates.get(se)
            if estimate is not None:
                attrs["estimated_rows"] = float(estimate)
        wants = getattr(self.taps, "wants", None)
        if wants is not None and wants(se):
            attrs["tapped"] = True
        self.tracer.point(repr(se), kind="operator", **attrs)

    def trace_sizes(self, sizes: "dict[AnySE, int]") -> None:
        """Operator points for backends that record sizes in bulk
        (the streaming backend accumulates per-tuple counters and
        publishes them once per block)."""
        if self.tracer is None or not self.tracer.enabled:
            return
        for se, rows in sizes.items():
            self.trace_point(se, rows)


class ExecutionBackend:
    """The protocol every execution backend implements."""

    #: registry key; also used for per-backend cost-model constants
    name: str = "abstract"

    def make_kernels(self) -> Kernels:
        """Fresh per-run kernel set (may carry run-scoped caches)."""
        return Kernels()

    def make_taps(self, stats: Iterable = ()):
        """Instrumentation object compatible with this backend."""
        raise NotImplementedError

    def begin_run(
        self,
        analysis: BlockAnalysis,
        sources: dict[str, Table],
        taps,
        compile_plans: bool,
    ) -> None:
        """Run-start hook, fired after source faults and before screening.

        Default no-op.  Sharding backends use it to snapshot the analysis
        and source tables for their worker pool (fork inheritance) before
        any per-run mutation happens.
        """

    def screen_sources(self, quality, sources, *, tracer=None, trace_parent=None):
        """Route contracted sources through the quality gate.

        Default delegates to the gate unchanged; sharding backends
        override to validate row shards in parallel (re-keying per-shard
        violations to global row ids so the quarantine output is
        identical).
        """
        return quality.screen_sources(
            sources, tracer=tracer, trace_parent=trace_parent
        )

    def execute_block(self, block: Block, tree: PlanTree, ctx: RunContext) -> Table:
        """Run one optimizable block with the given join tree."""
        raise NotImplementedError

    def observe_boundary(self, ctx: RunContext, se: SubExpression, table: Table) -> None:
        """Fire taps for a boundary output (no-op for per-tuple backends,
        whose downstream block streams already observe the same point)."""
        ctx.note(se, table)

    def collect(self, taps) -> StatisticsStore:
        """Turn the taps' accumulated state into a statistics store."""
        raise NotImplementedError

    def compiled_profile(self):
        """Execution profile for compiled plans, or ``None`` to opt out.

        Backends that return ``None`` (the default, so third-party
        backends are unaffected) always execute through their own
        :meth:`execute_block` interpreter.
        """
        return None


class BackendExecutor:
    """The shared plan-walking core: schedules blocks and boundaries.

    This is the engine-side half of the Figure 2 loop -- "run the
    instrumented plan".  It is backend-agnostic: all physical work happens
    inside :meth:`ExecutionBackend.execute_block` and the boundary kernels.
    """

    def __init__(
        self,
        analysis: BlockAnalysis,
        backend: "ExecutionBackend | str | None" = None,
        workers: int = 1,
        *,
        compile_plans: "bool | None" = None,
        plan_cache=None,
    ):
        self.analysis = analysis
        if backend is None:
            backend = "columnar"
        if isinstance(backend, str):
            backend = get_backend(backend)
        self.backend = backend
        self.workers = max(int(workers), 1)
        #: None defers to the process default (``REPRO_COMPILE``)
        self.compile_plans = compile_plans
        #: created lazily on the first compiled run when not injected, so
        #: a long-lived executor gets warm-cache behaviour for free
        self.plan_cache = plan_cache

    def _compile_enabled(self) -> bool:
        if self.compile_plans is not None:
            return bool(self.compile_plans)
        from repro.engine.compile import compile_enabled_default

        return compile_enabled_default()

    def run(
        self,
        sources: dict[str, Table],
        trees: dict[str, PlanTree] | None = None,
        taps=None,
        *,
        faults=None,
        retry: RetryPolicy | None = None,
        checkpoint=None,
        quality=None,
        tracer=None,
        trace_parent=None,
        estimates: "dict[AnySE, float] | None" = None,
    ) -> WorkflowRun:
        """Execute the workflow.

        ``trees`` maps block names to replacement join trees (defaults to
        each block's initial plan); ``taps`` is the instrumentation to fire
        (defaults to an empty tap set of the backend's flavour).

        Resilience (all optional):

        - ``faults`` -- a :class:`~repro.engine.faults.FaultPlan` or
          :class:`~repro.engine.faults.FaultInjector`; matching faults fire
          at every block attempt and source truncations are applied to the
          source map before execution;
        - ``retry`` -- a :class:`~repro.engine.scheduler.RetryPolicy`.
          Whenever ``faults`` or ``retry`` is given the run is
          *failure-capturing*: a permanently failed block lands in
          ``WorkflowRun.failures`` (its dependents are skipped) and the
          healthy rest of the DAG still executes and is observed;
        - ``checkpoint`` -- a :class:`~repro.framework.recovery.RunCheckpoint`.
          Blocks already recorded there are restored (output table,
          SE sizes, statistics) instead of re-executed, and every block
          that completes is persisted so a crashed run can resume;
        - ``quality`` -- a :class:`~repro.quality.gate.QualityGate`.
          Contracted sources are screened *here*, after source faults and
          before any block task is built, so every backend executes (and
          observes) the same surviving rows; the diverted rows land in
          ``WorkflowRun.quarantined`` with their ``violations`` and
          ``schema_drift`` events.  Screening runs after
          ``injector.apply_sources`` on purpose: injected dirty data goes
          through the same gate real dirty data would.

        Tracing (all optional): ``tracer`` records a span per scheduled
        task under ``trace_parent`` plus an operator point per
        materialized plan point; ``estimates`` maps SEs to prior row
        predictions, annotated onto the matching operator points so a
        trace exposes estimated-vs-actual rows.
        """
        from repro.engine.faults import as_injector

        if tracer is not None and not tracer.enabled:
            tracer = None
        trees = trees or {}
        taps = taps if taps is not None else self.backend.make_taps(())
        injector = as_injector(faults)
        if injector is not None:
            sources = injector.apply_sources(sources)
        self.backend.begin_run(
            self.analysis, sources, taps, self._compile_enabled()
        )
        if quality is not None:
            sources = self.backend.screen_sources(
                quality, sources, tracer=tracer, trace_parent=trace_parent
            )
        self._check_sources(sources)
        run = WorkflowRun(env=dict(sources))
        if quality is not None:
            run.quarantined = quality.quarantined_tables()
            run.violations = quality.all_violations()
            run.schema_drift = quality.drift_events()
        ctx = RunContext(
            run=run,
            taps=taps,
            kernels=self.backend.make_kernels(),
            tracer=tracer,
            estimates=estimates,
            injector=injector,
        )

        compiled, profile, engine = self._compile(
            run, trees, quality, tracer, trace_parent
        )

        resumed: set[str] = set()
        if checkpoint is not None:
            resumed = checkpoint.restore(self.analysis, run)
            run.resumed = tuple(sorted(resumed))
            if tracer is not None:
                for name in sorted(resumed):
                    tracer.point(
                        name, kind="resumed", parent=trace_parent,
                        source="checkpoint",
                    )

        tasks: list[Task] = []
        for block in self.analysis.blocks:
            if block.name in resumed:
                continue
            tree = trees.get(block.name, block.initial_tree)
            runner = None
            if compiled is not None:
                program = compiled.get(block.name)
                if program is not None:
                    from repro.engine.compile import CompiledBlockRunner

                    runner = CompiledBlockRunner(
                        program, block, profile, engine
                    )
            tasks.append(
                Task(
                    name=block.name,
                    provides=block.output_name,
                    requires=tuple(
                        sorted({inp.base_name for inp in block.inputs.values()})
                    ),
                    fn=partial(
                        self._run_block, block, tree, ctx, checkpoint, runner
                    ),
                    kind="block",
                )
            )
        for boundary in self.analysis.boundaries:
            tasks.append(
                Task(
                    name=boundary.output_name,
                    provides=boundary.output_name,
                    requires=(boundary.input_name,),
                    fn=partial(self._run_boundary, boundary, ctx),
                    kind="boundary",
                )
            )
        if injector is not None:
            tasks = injector.wrap_tasks(tasks)

        policy = retry
        if policy is None and injector is not None:
            policy = RetryPolicy()  # capture failures; no retries by default

        try:
            result = ParallelScheduler(self.workers).execute(
                tasks,
                available=set(run.env),
                policy=policy,
                tracer=tracer,
                trace_parent=trace_parent,
            )
        except SchedulerError as exc:  # pragma: no cover - analysis emits a DAG
            raise TableError(
                f"workflow execution deadlocked; block analysis produced "
                f"a cyclic dependency ({exc})"
            ) from exc

        run.failures = dict(result.failures)
        observations = self.backend.collect(taps)
        if checkpoint is not None and checkpoint.statistics is not None:
            # statistics present only in the journal were observed on the
            # crashed attempt, not tonight: remember them so the catalog
            # reconcile keeps their original provenance timestamps
            run.restored_statistics = frozenset(
                stat
                for stat in checkpoint.statistics
                if stat not in observations
            )
            merged = checkpoint.statistics.copy()
            merged.merge(observations)
            observations = merged
        run.observations = observations
        return run

    # ------------------------------------------------------------------
    def _compile(self, run, trees, quality, tracer, trace_parent):
        """Compile every block (cached) unless compilation is off or the
        backend opts out; returns ``(plan, profile, gather engine)``."""
        if not self._compile_enabled():
            return None, None, None
        profile = self.backend.compiled_profile()
        if profile is None:
            return None, None, None
        from repro.engine.compile import (
            PlanCache,
            compile_blocks,
            make_engine,
        )

        if self.plan_cache is None:
            self.plan_cache = PlanCache()
        # schema drift means the cached programs were compiled against a
        # source shape that no longer holds: evict, never silently reuse
        invalidated = 0
        for event in run.schema_drift:
            invalidated += self.plan_cache.invalidate_source(event.source)
        tokens = _contract_tokens(quality) if quality is not None else None
        span = None
        compiled = None
        if tracer is not None:
            span = tracer.start("compile", kind="phase", parent=trace_parent)
        try:
            compiled = compile_blocks(
                self.analysis,
                trees,
                backend=self.backend.name,
                profile=profile,
                cache=self.plan_cache,
                context_tokens=tokens,
            )
        finally:
            if tracer is not None and span is not None:
                tracer.end(
                    span,
                    blocks=len(self.analysis.blocks),
                    fused_ops=compiled.fused_ops if compiled else None,
                    cache_hits=compiled.cache_hits if compiled else None,
                    cache_misses=compiled.cache_misses if compiled else None,
                    cache_invalidations=invalidated,
                )
        return compiled, profile, make_engine(profile.gather)

    def _run_block(
        self,
        block: Block,
        tree: PlanTree,
        ctx: RunContext,
        checkpoint=None,
        runner=None,
    ) -> None:
        if runner is not None:
            out = runner.execute(ctx)
        else:
            out = self.backend.execute_block(block, tree, ctx)
        ctx.run.env[block.output_name] = out
        if checkpoint is not None:
            with ctx.lock:
                checkpoint.record_block(
                    block,
                    out,
                    dict(ctx.run.se_sizes),
                    self.backend.collect(ctx.taps),
                )

    def _run_boundary(self, boundary: BoundaryOp, ctx: RunContext) -> None:
        node = boundary.node
        run = ctx.run
        table = run.env[boundary.input_name]
        if isinstance(node, Target):
            run.targets[node.name] = table
            return
        kernels = ctx.kernels
        if isinstance(node, Aggregate):
            out = kernels.group_by(table, node.group_attrs, node.aggregates)
        elif isinstance(node, AggregateUDF):
            out = kernels.apply_aggregate_udf(table, node.fn)
        elif isinstance(node, Materialize):
            out = table
        else:  # pragma: no cover - analysis emits only these
            raise TableError(f"unexpected boundary {node.label}")
        run.env[boundary.output_name] = out
        out_se = SubExpression.of(boundary.output_name)
        with ctx.lock:
            run.se_sizes[out_se] = out.num_rows
        self.backend.observe_boundary(ctx, out_se, out)

    def _check_sources(self, sources: dict[str, Table]) -> None:
        missing = [
            name
            for name in self.analysis.workflow.source_names()
            if name not in sources
        ]
        if missing:
            raise TableError(f"missing source tables: {missing}")


def _contract_tokens(quality) -> dict[str, str]:
    """Per-source contract fingerprints, folded into plan-cache keys so a
    contract revision is a cache miss rather than a silent stale reuse."""
    from repro.catalog.signatures import digest

    contracts = getattr(quality, "contracts", None)
    mapping = getattr(contracts, "contracts", None)
    if not mapping:
        return {}
    return {
        name: digest(contract.to_dict())
        for name, contract in mapping.items()
    }


# ---------------------------------------------------------------------------
# backend registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(name: str, factory: Callable[[], ExecutionBackend]) -> None:
    """Register a backend factory under ``name`` (overrides allowed)."""
    _REGISTRY[name] = factory


def _builtin_factories() -> None:
    if "columnar" not in _REGISTRY:
        from repro.engine.executor import ColumnarBackend

        register_backend("columnar", ColumnarBackend)
    if "streaming" not in _REGISTRY:
        from repro.engine.streaming import StreamingBackend

        register_backend("streaming", StreamingBackend)
    if "vectorized" not in _REGISTRY:
        from repro.engine.vectorized import VectorizedBackend

        register_backend("vectorized", VectorizedBackend)
    if "multiprocess" not in _REGISTRY:
        from repro.engine.dist import MultiprocessBackend

        register_backend("multiprocess", MultiprocessBackend)


def available_backends() -> list[str]:
    """Names of every registered backend."""
    _builtin_factories()
    return sorted(_REGISTRY)


def get_backend(name: str) -> ExecutionBackend:
    """Resolve a backend name to a fresh backend instance."""
    _builtin_factories()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise TableError(
            f"unknown execution backend {name!r}; "
            f"available: {available_backends()}"
        ) from None
    return factory()
