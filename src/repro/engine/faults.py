"""Deterministic fault injection for chaos-testing the nightly run.

The paper's Section 1 premise -- ETL sources are flat files and foreign
DBMSs *outside the engine's control* -- is exactly the part of the system
that fails in production: a source goes away mid-extract, a file arrives
truncated, a remote join stalls.  To make every such failure mode testable
(and the recovery machinery in :mod:`repro.engine.scheduler` and
:mod:`repro.framework.recovery` provable), this module injects faults
*deterministically* from a seeded plan:

- :class:`FaultSpec` -- one fault: raise a transient or permanent error,
  delay a block (to trip the scheduler's deadline), truncate a source
  table (the short-file case), or poison source *data*: ``corrupt-row``
  (a sentinel garbage value), ``type-flip`` (values arrive stringified),
  ``null-burst`` (values arrive null) and ``column-rename`` (a column
  arrives under another name) -- the dirty-extract cases the quality gate
  (:mod:`repro.quality`) exists to absorb;
- :class:`FaultPlan` -- a seeded collection of specs, JSON round-trippable
  so chaos runs are reproducible from a ``--faults spec.json`` file;
- :class:`FaultInjector` -- per-run stateful form: wraps scheduler tasks
  so matching faults fire at block-attempt boundaries, and filters the
  source map for truncations.  Attempt counting is per *task*, which is
  what makes ``{"kind": "transient", "times": 2}`` mean "the first two
  attempts fail, the third succeeds" -- the retry loop converges.

Faults raised here self-classify through the ``transient`` attribute that
:func:`repro.engine.scheduler.classify_error` duck-types on, so the
injected errors travel the same triage path as real I/O failures.
"""

from __future__ import annotations

import json
import random
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Sequence

from repro.engine.scheduler import Task
from repro.engine.table import Table

FAULT_KINDS = (
    "transient",
    "permanent",
    "delay",
    "truncate",
    # dirty-data injectors: mutate source tables instead of raising, so the
    # quality gate (repro.quality) can be chaos-tested end to end
    "corrupt-row",
    "type-flip",
    "column-rename",
    "null-burst",
    # catalog-server injectors: fired per client *request* (never in-task),
    # so the CatalogClient's retry/breaker/degradation path is chaos-testable
    "server-kill",
    "server-hang",
    "net-flap",
    # HA injectors: primary-kill matches the *endpoint URL* (not the route)
    # so one box of a replicated pair dies while the other keeps answering;
    # replication-stall sleeps the standby's stream poll so lag grows
    "primary-kill",
    "replication-stall",
    # shard-worker injectors: consulted by sharding backends at shard
    # dispatch (``on_shard``), so a worker process dying or hanging mid-run
    # exercises the pool-recovery and shard-retry path
    "worker-kill",
    "worker-hang",
)

#: kinds applied to the source map before execution (never raised in-task)
_SOURCE_KINDS = ("truncate", "corrupt-row", "type-flip", "column-rename", "null-burst")

#: kinds fired at catalog-client request boundaries (see ``on_request``)
_SERVER_KINDS = ("server-kill", "server-hang", "net-flap", "primary-kill")

#: kinds fired at standby stream-poll boundaries (see ``on_replication``)
_REPLICATION_KINDS = ("replication-stall",)

#: kinds fired at shard dispatch inside a sharding backend (see ``on_shard``)
_SHARD_KINDS = ("worker-kill", "worker-hang")

#: source kinds that poison individual rows (need ``fraction`` or ``rows``)
_DIRTY_ROW_KINDS = ("corrupt-row", "type-flip", "null-burst")

#: the value a corrupt-row fault writes; fails any typed or domain check
CORRUPT_SENTINEL = "__CORRUPT__"


class FaultError(ValueError):
    """Raised for malformed fault plans (not by injected faults)."""


class InjectedFault(RuntimeError):
    """Base class of errors the injector raises inside a wrapped task."""

    transient = False


class TransientFault(InjectedFault):
    """An injected error that a retry may outlive (network blip, lock)."""

    transient = True


class PermanentFault(InjectedFault):
    """An injected error no retry heals (missing file, schema break)."""

    transient = False


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault.

    ``target`` matches a block name (``"B2"``), a source/environment name
    (``"customers"``), or a glob over either (``"B*"``); a source-targeted
    error fires in every block that consumes that source, modelling a
    failed source load.  ``times`` bounds how many attempts (per task) the
    fault fires on -- ``None`` means every attempt for ``permanent`` and
    ``delay`` faults and exactly once for ``transient`` ones, so the
    default transient fault is survivable with a single retry.
    ``probability`` gates each firing on the plan's seeded RNG.
    """

    target: str
    kind: str
    times: int | None = None
    probability: float = 1.0
    delay: float = 0.0
    keep: float | None = None  # truncate: fraction of rows kept
    rows: int | None = None  # truncate: rows kept; dirty kinds: rows poisoned
    column: str | None = None  # dirty kinds: the column to poison/rename
    fraction: float | None = None  # dirty row kinds: fraction of rows poisoned
    rename_to: str | None = None  # column-rename: the arriving column name
    shard: int | None = None  # worker kinds: the shard index hit (default 0)
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not self.target:
            raise FaultError("a fault spec needs a target")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(f"probability must be in [0, 1], got {self.probability}")
        if self.kind == "truncate" and self.keep is None and self.rows is None:
            raise FaultError("a truncate fault needs 'keep' (fraction) or 'rows'")
        if self.keep is not None and not 0.0 <= self.keep <= 1.0:
            raise FaultError(f"keep must be in [0, 1], got {self.keep}")
        if self.delay < 0:
            raise FaultError(f"delay must be >= 0, got {self.delay}")
        if self.kind in _DIRTY_ROW_KINDS:
            if self.fraction is None and self.rows is None:
                raise FaultError(
                    f"a {self.kind} fault needs 'fraction' (of rows) or 'rows'"
                )
        elif self.fraction is not None:
            raise FaultError(f"'fraction' only applies to {_DIRTY_ROW_KINDS}")
        if self.fraction is not None and not 0.0 <= self.fraction <= 1.0:
            raise FaultError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.kind == "column-rename" and not self.column:
            raise FaultError("a column-rename fault needs 'column'")
        if self.kind == "replication-stall" and self.delay <= 0:
            raise FaultError("a replication-stall fault needs 'delay' > 0")
        if self.rename_to is not None and self.kind != "column-rename":
            raise FaultError("'rename_to' only applies to column-rename faults")
        if self.shard is not None:
            if self.kind not in _SHARD_KINDS:
                raise FaultError(f"'shard' only applies to {_SHARD_KINDS}")
            if self.shard < 0:
                raise FaultError(f"shard must be >= 0, got {self.shard}")

    def matches(self, name: str) -> bool:
        return fnmatchcase(name, self.target)

    @property
    def fire_limit(self) -> int | None:
        """Attempts (per task) this fault fires on; ``None`` = unbounded."""
        if self.times is not None:
            return self.times
        # a lone network flap, like a lone transient, should be outlived
        # by a single retry; a killed server (or killed primary) stays dead
        # until restarted.  a killed/hung worker is *replaced* by the pool,
        # and a lone replication stall is outlived by the next poll, so
        # their default budget is one firing
        if self.kind in (
            "transient", "net-flap", "worker-kill", "worker-hang",
            "replication-stall",
        ):
            return 1
        return None

    def to_dict(self) -> dict:
        doc: dict = {"target": self.target, "kind": self.kind}
        if self.times is not None:
            doc["times"] = self.times
        if self.probability != 1.0:
            doc["probability"] = self.probability
        if self.delay:
            doc["delay"] = self.delay
        if self.keep is not None:
            doc["keep"] = self.keep
        if self.rows is not None:
            doc["rows"] = self.rows
        if self.column is not None:
            doc["column"] = self.column
        if self.fraction is not None:
            doc["fraction"] = self.fraction
        if self.rename_to is not None:
            doc["rename_to"] = self.rename_to
        if self.shard is not None:
            doc["shard"] = self.shard
        if self.message:
            doc["message"] = self.message
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultSpec":
        if not isinstance(doc, dict):
            raise FaultError(f"fault spec must be an object, got {doc!r}")
        unknown = set(doc) - {
            "target", "kind", "times", "probability", "delay",
            "keep", "rows", "column", "fraction", "rename_to", "shard",
            "message",
        }
        if unknown:
            raise FaultError(f"unknown fault spec field(s): {sorted(unknown)}")
        try:
            return cls(
                target=doc["target"],
                kind=doc["kind"],
                times=doc.get("times"),
                probability=doc.get("probability", 1.0),
                delay=doc.get("delay", 0.0),
                keep=doc.get("keep"),
                rows=doc.get("rows"),
                column=doc.get("column"),
                fraction=doc.get("fraction"),
                rename_to=doc.get("rename_to"),
                shard=doc.get("shard"),
                message=doc.get("message", ""),
            )
        except KeyError as exc:
            raise FaultError(f"fault spec missing required field {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of faults for one chaos run."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def injector(self) -> "FaultInjector":
        """Fresh per-run injector (attempt counters start at zero)."""
        return FaultInjector(self)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise FaultError(f"fault plan must be a JSON object, got {doc!r}")
        faults = doc.get("faults", [])
        if not isinstance(faults, list):
            raise FaultError("'faults' must be a list of fault specs")
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in faults),
            seed=int(doc.get("seed", 0)),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, UnicodeDecodeError) as exc:
            raise FaultError(f"cannot read fault plan {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired, for run forensics."""

    task: str
    target: str
    kind: str
    attempt: int


class FaultInjector:
    """Per-run fault state: wraps tasks and filters sources.

    Thread-safe: attempt counters and the seeded RNG sit behind a lock so
    concurrently retrying blocks draw a deterministic *set* of outcomes
    (the per-(spec, task) counters are independent of interleaving;
    probabilistic draws use a per-(spec, task) RNG for the same reason).
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._fired: Counter = Counter()  # (spec index, task name) -> firings
        self._attempts: Counter = Counter()  # task name -> attempts seen
        self._rngs: dict[tuple[int, str], random.Random] = {}
        self.events: list[FaultEvent] = []
        #: rows poisoned per source (indices into the table as it reached
        #: the spec) -- the chaos suite asserts the quality gate quarantines
        #: *exactly* these rows
        self.dirty_rows: dict[str, set[int]] = {}

    # ------------------------------------------------------------------
    def apply_sources(self, sources: dict[str, Table]) -> dict[str, Table]:
        """Apply source faults: truncations and dirty-data mutations.

        Specs apply in plan order, each seeing its predecessors' output.
        Dirty-row kinds draw their victim rows from a deterministic
        per-(spec, source) RNG, so the same plan poisons the same rows on
        every backend and every retry of the run.
        """
        out = dict(sources)
        for index, spec in enumerate(self.plan.specs):
            if spec.kind not in _SOURCE_KINDS:
                continue
            for name in sources:
                if not spec.matches(name):
                    continue
                table = out[name]
                if spec.kind == "truncate":
                    if spec.rows is not None:
                        kept = spec.rows
                    else:
                        kept = int(table.num_rows * spec.keep)
                    kept = max(0, min(kept, table.num_rows))
                    out[name] = table.take(range(kept))
                elif spec.kind == "column-rename":
                    if not table.has_column(spec.column):
                        continue
                    arrived_as = spec.rename_to or f"{spec.column}_v2"
                    out[name] = table.rename_columns({spec.column: arrived_as})
                else:
                    poisoned = self._poison_rows(index, spec, name, table)
                    if poisoned is None:
                        continue
                    out[name] = poisoned
                with self._lock:
                    self._fired[(index, name)] += 1
                    self.events.append(
                        FaultEvent(task=name, target=spec.target, kind=spec.kind,
                                   attempt=1)
                    )
        return out

    def _poison_rows(
        self, index: int, spec: FaultSpec, name: str, table: Table
    ) -> Table | None:
        """One dirty-row mutation; returns ``None`` on an empty table."""
        n = table.num_rows
        if n == 0:
            return None
        if spec.rows is not None:
            count = max(0, min(spec.rows, n))
        else:
            count = min(n, max(1, round(spec.fraction * n)))
        if count == 0:
            return None
        rng = random.Random(f"{self.plan.seed}:{index}:{name}")
        victims = sorted(rng.sample(range(n), count))
        column = (
            spec.column
            if spec.column and table.has_column(spec.column)
            else table.attrs[0]
        )
        values = list(table.column(column))
        for i in victims:
            values[i] = _dirty_value(spec.kind, values[i])
        with self._lock:
            self.dirty_rows.setdefault(name, set()).update(victims)
        return table.with_column(column, values)

    def wrap(self, task: Task) -> Task:
        """A task that consults the plan at the start of every attempt."""
        scopes = (task.name, *task.requires)

        def fn() -> None:
            self.on_attempt(task.name, scopes)
            task.fn()

        return Task(
            name=task.name,
            provides=task.provides,
            requires=task.requires,
            fn=fn,
            kind=task.kind,
        )

    def wrap_tasks(self, tasks: Sequence[Task]) -> list[Task]:
        return [self.wrap(t) for t in tasks]

    # ------------------------------------------------------------------
    def on_attempt(self, task_name: str, scopes: Sequence[str]) -> None:
        """Fire matching faults for one attempt of ``task_name``.

        ``scopes`` are the names a fault may match: the task itself plus
        its requirements, so a fault on source ``customers`` surfaces as a
        load error inside every block that reads ``customers``.
        """
        pause = 0.0
        raised: InjectedFault | None = None
        with self._lock:
            self._attempts[task_name] += 1
            for index, spec in enumerate(self.plan.specs):
                if (
                    spec.kind in _SOURCE_KINDS
                    or spec.kind in _SERVER_KINDS
                    or spec.kind in _SHARD_KINDS
                    or spec.kind in _REPLICATION_KINDS
                ):
                    continue
                scope = next((s for s in scopes if spec.matches(s)), None)
                if scope is None:
                    continue
                key = (index, task_name)
                limit = spec.fire_limit
                if limit is not None and self._fired[key] >= limit:
                    continue
                if spec.probability < 1.0:
                    rng = self._rngs.setdefault(
                        key, random.Random(f"{self.plan.seed}:{index}:{task_name}")
                    )
                    if rng.random() >= spec.probability:
                        continue
                self._fired[key] += 1
                self.events.append(
                    FaultEvent(
                        task=task_name,
                        target=spec.target,
                        kind=spec.kind,
                        attempt=self._attempts[task_name],
                    )
                )
                if spec.kind == "delay":
                    pause += spec.delay
                    continue
                message = spec.message or (
                    f"injected {spec.kind} fault on {scope!r} "
                    f"(attempt {self._attempts[task_name]} of {task_name!r})"
                )
                exc_type = TransientFault if spec.kind == "transient" else PermanentFault
                raised = exc_type(message)
                break  # first raising fault wins; later specs keep their budget
        if pause:
            time.sleep(pause)
        if raised is not None:
            raise raised

    def on_request(self, name: str, endpoint: str = "") -> None:
        """Fire matching *server* faults for one catalog-client request.

        ``name`` is the request route (``"/put"``); specs match it by glob
        (``"*"`` for "the whole server").  Semantics mirror the failure
        they model: ``server-kill`` raises a permanent connection error on
        every request until the spec's budget runs out (a dead server does
        not heal by retrying), ``server-hang`` sleeps ``delay`` seconds
        and then times out transiently, ``net-flap`` raises one transient
        error a single retry outlives.

        ``primary-kill`` is the HA variant: its target globs the
        ``endpoint`` *URL* instead of the route, so with a replicated pair
        exactly one box goes permanently dark while requests to the other
        endpoint sail through -- the client's failover path, not its
        degradation path, gets exercised.
        """
        pause = 0.0
        raised: InjectedFault | None = None
        request_key = f"request:{name}"
        with self._lock:
            self._attempts[request_key] += 1
            for index, spec in enumerate(self.plan.specs):
                if spec.kind not in _SERVER_KINDS:
                    continue
                fire_key = request_key
                if spec.kind == "primary-kill":
                    if not endpoint or not spec.matches(endpoint):
                        continue
                    # budget and telemetry keyed per endpoint, not per
                    # route: the fault is about a box, not a request
                    fire_key = f"request:{endpoint}"
                elif not spec.matches(name):
                    continue
                key = (index, fire_key)
                limit = spec.fire_limit
                if limit is not None and self._fired[key] >= limit:
                    continue
                if spec.probability < 1.0:
                    rng = self._rngs.setdefault(
                        key,
                        random.Random(f"{self.plan.seed}:{index}:{fire_key}"),
                    )
                    if rng.random() >= spec.probability:
                        continue
                self._fired[key] += 1
                self.events.append(
                    FaultEvent(
                        task=fire_key,
                        target=spec.target,
                        kind=spec.kind,
                        attempt=self._attempts[request_key],
                    )
                )
                if spec.kind == "primary-kill":
                    message = spec.message or (
                        f"injected primary-kill fault: endpoint "
                        f"{endpoint!r} is dead"
                    )
                    raised = PermanentFault(message)
                    break
                message = spec.message or (
                    f"injected {spec.kind} fault on catalog request {name!r}"
                )
                if spec.kind == "server-hang":
                    pause += spec.delay
                    raised = TransientFault(message)
                elif spec.kind == "net-flap":
                    raised = TransientFault(message)
                else:  # server-kill
                    raised = PermanentFault(message)
                break
        if pause:
            time.sleep(pause)
        if raised is not None:
            raise raised

    def on_replication(self, name: str) -> None:
        """Fire matching *replication* faults for one stream poll.

        ``name`` is the upstream the standby tails (its URL); a
        ``replication-stall`` spec matching it sleeps ``delay`` seconds in
        the tailer thread -- the stream survives, the standby just falls
        behind, and the lag gauge shows it.  The default budget is one
        stall (the next poll catches up); set ``times`` for a longer one.
        """
        pause = 0.0
        poll_key = f"replication:{name}"
        with self._lock:
            self._attempts[poll_key] += 1
            for index, spec in enumerate(self.plan.specs):
                if spec.kind not in _REPLICATION_KINDS:
                    continue
                if not spec.matches(name):
                    continue
                key = (index, poll_key)
                limit = spec.fire_limit
                if limit is not None and self._fired[key] >= limit:
                    continue
                if spec.probability < 1.0:
                    rng = self._rngs.setdefault(
                        key,
                        random.Random(f"{self.plan.seed}:{index}:{poll_key}"),
                    )
                    if rng.random() >= spec.probability:
                        continue
                self._fired[key] += 1
                self.events.append(
                    FaultEvent(
                        task=poll_key,
                        target=spec.target,
                        kind=spec.kind,
                        attempt=self._attempts[poll_key],
                    )
                )
                pause += spec.delay
        if pause:
            time.sleep(pause)

    def on_shard(self, block_name: str, shard: int) -> "FaultSpec | None":
        """The worker fault (if any) to apply to one shard dispatch.

        Consulted by sharding backends in the *parent* right before a
        shard task is submitted; the returned spec's kind tells the worker
        what to do to itself (``worker-kill`` -> die abruptly,
        ``worker-hang`` -> stall for ``delay`` seconds).  Matching is by
        block name (glob) plus the spec's ``shard`` index (default 0);
        budgets and probability draws mirror :meth:`on_attempt`, keyed per
        (spec, block) so a retried shard consults the remaining budget --
        which is what makes a default worker-kill survivable by a single
        shard retry.
        """
        directive: FaultSpec | None = None
        with self._lock:
            for index, spec in enumerate(self.plan.specs):
                if spec.kind not in _SHARD_KINDS:
                    continue
                if not spec.matches(block_name):
                    continue
                if (spec.shard if spec.shard is not None else 0) != shard:
                    continue
                key = (index, f"{block_name}#shard{shard}")
                limit = spec.fire_limit
                if limit is not None and self._fired[key] >= limit:
                    continue
                if spec.probability < 1.0:
                    rng = self._rngs.setdefault(
                        key,
                        random.Random(f"{self.plan.seed}:{index}:{key[1]}"),
                    )
                    if rng.random() >= spec.probability:
                        continue
                self._fired[key] += 1
                self._attempts[key[1]] += 1
                self.events.append(
                    FaultEvent(
                        task=key[1],
                        target=spec.target,
                        kind=spec.kind,
                        attempt=self._attempts[key[1]],
                    )
                )
                directive = spec
                break
        return directive

    def fired(self) -> int:
        """Total number of fault firings so far."""
        with self._lock:
            return len(self.events)


def _dirty_value(kind: str, value):
    """The mutation each dirty-row kind applies to one victim value."""
    if kind == "null-burst":
        return None
    if kind == "corrupt-row":
        return CORRUPT_SENTINEL
    # type-flip: numbers (and None) arrive stringified; strings arrive as 0
    if isinstance(value, str):
        return 0
    return str(value)


def as_injector(faults: "FaultPlan | FaultInjector | None") -> FaultInjector | None:
    """Normalize the ``faults=`` argument executors accept."""
    if faults is None or isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return faults.injector()
    raise FaultError(f"expected a FaultPlan or FaultInjector, got {faults!r}")


__all__ = [
    "CORRUPT_SENTINEL",
    "FAULT_KINDS",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "PermanentFault",
    "TransientFault",
    "as_injector",
]
