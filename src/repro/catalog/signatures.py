"""Canonical, schema-aware signatures for statistics and sub-expressions.

A :class:`~repro.core.statistics.Statistic` is workflow-*local*: its SE
names block inputs such as ``DimCustomer@17`` whose suffixes are DAG node
ids, so the "same" statistic reached through two workflows (or two designs
of the same workflow) compares unequal.  The paper's evaluation runs 30
TPC-DI workflows whose sub-expressions overlap heavily — sharing their
observations across workflows needs an identity that survives renaming.

A *signature* is that identity.  It describes what an SE **computes**
rather than how the workflow spells it:

- a raw source feed is its relation name;
- a staged input is its base feed plus the ordered chain of anchored
  unary steps, each reduced to ``(kind, attrs, payload, result)`` — the
  predicate/UDF *names* stay (they are semantics), the node ids go (they
  are workflow accidents);
- an input fed by another block's boundary output embeds the upstream
  block's own output signature plus the boundary kind and group-by
  attributes, recursively;
- a join SE is the *set* of its member feed signatures plus the join
  edges between them (and any floating operators it absorbs);
- reject links and reject side-joins wrap their member signatures.

Two statistics with equal signatures are interchangeable whenever the
schemas agree: same input data implies same value.  The signature is
hashed (SHA-256 over canonical JSON) into a fixed-length key the
:class:`~repro.catalog.store.StatisticsCatalog` indexes by.
"""

from __future__ import annotations

import hashlib
import json

from repro.algebra.blocks import Block, BlockAnalysis, BlockInput, Step
from repro.algebra.expressions import (
    AnySE,
    RejectJoinSE,
    RejectSE,
    SubExpression,
)
from repro.core.statistics import Statistic

#: hex digest length of catalog keys (collision odds are negligible at 32)
KEY_LENGTH = 32


class SignatureError(ValueError):
    """Raised when an SE cannot be resolved against the analyzed workflow."""


def _step_sig(step: Step) -> list:
    """Canonical form of one anchored unary step (node ids excluded)."""
    return [
        step.kind,
        sorted(step.attrs),
        step.payload,
        step.result_attr or "",
        sorted(step.out_attrs),
    ]


def _canonical(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def digest(doc) -> str:
    """Hash a signature document into a catalog key."""
    return hashlib.sha256(_canonical(doc).encode()).hexdigest()[:KEY_LENGTH]


class WorkflowSigner:
    """Computes canonical signatures for one analyzed workflow.

    The signer resolves every name that can appear inside a statistic's SE
    — raw sources, staged inputs, intermediate stages, post-join stages,
    upstream boundary outputs — to a canonical *feed signature*, then
    assembles SE and statistic signatures from those.
    """

    def __init__(self, analysis: BlockAnalysis):
        self.analysis = analysis
        #: env/stage name -> canonical feed signature document
        self._feeds: dict[str, object] = {}
        #: frozenset of member names -> owning block (for join SEs)
        self._blocks: list[Block] = list(analysis.blocks)
        self._block_sig_cache: dict[str, object] = {}
        for block in self._blocks:
            self._register_block(block)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _register_block(self, block: Block) -> None:
        for inp in block.inputs.values():
            self._register_input(inp)
        if block.post_steps:
            # the join signature underneath is resolved lazily (_PostStage):
            # it depends on inputs of *other* blocks registered later
            for i, name in enumerate(block.post_stage_names()):
                steps = [_step_sig(s) for s in block.post_steps[: i + 1]]
                self._feeds[name] = _PostStage(self, block, steps)

    def _register_input(self, inp: BlockInput) -> None:
        base = self._base_feed(inp)
        names = inp.stage_names()
        self._feeds.setdefault(names[0], base)
        for i, name in enumerate(names[1:], start=1):
            sig = {"feed": base, "steps": [_step_sig(s) for s in inp.steps[:i]]}
            self._feeds.setdefault(name, sig)

    def _base_feed(self, inp: BlockInput):
        if inp.upstream is None:
            return {"src": inp.base_name}
        link = inp.upstream
        upstream_block = self.analysis.block(link.block_name)
        return {
            "up": {
                "of": self._block_output_sig(upstream_block),
                "kind": link.kind,
                "group": sorted(link.group_attrs),
            }
        }

    def _block_output_sig(self, block: Block):
        """Signature of a block's (post-boundary) output SE."""
        cached = self._block_sig_cache.get(block.name)
        if cached is not None:
            return cached
        sig = self._join_sig(block, frozenset(block.inputs))
        if block.post_steps:
            sig = {"post": sig, "steps": [_step_sig(s) for s in block.post_steps]}
        self._block_sig_cache[block.name] = sig
        return sig

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _feed(self, name: str):
        try:
            sig = self._feeds[name]
        except KeyError:
            raise SignatureError(
                f"unknown SE member {name!r}; it is not a source, stage or "
                "block input of this workflow"
            ) from None
        if isinstance(sig, _PostStage):
            sig = sig.resolve()
            self._feeds[name] = sig
        return sig

    def _owning_block(self, relations: frozenset[str]) -> Block:
        for block in self._blocks:
            if relations <= set(block.inputs):
                return block
        raise SignatureError(
            f"no optimizable block joins all of {sorted(relations)}"
        )

    def _join_sig(self, block: Block, relations: frozenset[str]):
        members = {name: self._feed(name) for name in relations}
        edges = []
        for edge in block.graph.edges:
            if edge.u in relations and edge.v in relations:
                pair = sorted(
                    [_canonical(members[edge.u]), _canonical(members[edge.v])]
                )
                edges.append([edge.attr, pair])
        edges.sort()
        floating = sorted(
            _step_sig(op.step)
            for op in block.floating
            if op.anchor <= relations
        )
        sig = {
            "join": sorted(members.values(), key=_canonical),
            "edges": edges,
        }
        if floating:
            sig["floating"] = floating
        return sig

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def se_signature(self, se: AnySE):
        """Canonical signature document for any SE flavour."""
        if isinstance(se, SubExpression):
            if se.is_base:
                return self._feed(se.base_name)
            block = self._owning_block(se.relations)
            return self._join_sig(block, se.relations)
        if isinstance(se, RejectSE):
            key = list(se.key) if isinstance(se.key, tuple) else se.key
            return {
                "reject": {
                    "source": self.se_signature(se.source),
                    "key": key,
                    "against": self.se_signature(se.against),
                }
            }
        if isinstance(se, RejectJoinSE):
            key = list(se.key) if isinstance(se.key, tuple) else se.key
            return {
                "reject_join": {
                    "reject": self.se_signature(se.reject),
                    "key": key,
                    "other": self.se_signature(se.other),
                }
            }
        raise SignatureError(f"not a sub-expression: {se!r}")

    def se_key(self, se: AnySE) -> str:
        """Catalog key for an SE (shared by all statistics on it)."""
        return digest(self.se_signature(se))

    def block_output_signature(self, block: Block):
        """Canonical signature of a block's output feed.

        Join-tree invariant by construction (edges are canonicalized),
        so consumers that must distinguish plan shapes -- the compiled
        plan cache -- add the tree to their keys separately.
        """
        return self._block_output_sig(block)

    def statistic_signature(self, stat: Statistic):
        return {
            "kind": stat.kind.value,
            "attrs": list(stat.attrs),
            "se": self.se_signature(stat.se),
        }

    def statistic_key(self, stat: Statistic) -> str:
        """Catalog key identifying ``stat`` across workflows and runs."""
        return digest(self.statistic_signature(stat))


class _PostStage:
    """Lazy post-stage feed: the join signature underneath is only
    computable after every block input has been registered."""

    def __init__(self, signer: WorkflowSigner, block: Block, steps: list):
        self.signer = signer
        self.block = block
        self.steps = steps

    def resolve(self):
        join_sig = self.signer._join_sig(
            self.block, frozenset(self.block.inputs)
        )
        return {"post": join_sig, "steps": self.steps}


__all__ = ["KEY_LENGTH", "SignatureError", "WorkflowSigner", "digest"]
