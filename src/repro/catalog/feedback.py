"""Adaptive catalog feedback: learn from the estimation-error stream.

:mod:`repro.catalog.drift` reconciles the catalog against what a run
*materialized*; this module closes the other half of the adaptive loop of
Adaptive Cardinality Estimation (arXiv:1711.08330): compare what the
optimizer *believed* (the per-operator ``estimated_rows`` predictions the
trace layer annotates, i.e. prior SE sizes overlaid with tonight's
catalog cardinalities) against what the run observed, and

1. **correct** -- a catalog cardinality entry whose prediction missed by
   more than ``threshold`` is refreshed in place with the observed value,
   with the error folded into its quality score first (the same
   penalize-then-record sequence as the drift scan);
2. **remember** -- per-statistic errors are smoothed across runs (EWMA),
   so a persistently misestimated statistic is distinguishable from a
   one-night blip;
3. **re-rank** -- :func:`~repro.catalog.fleet.plan_fleet` accepts the
   corrector as its ``feedback`` argument: statistics flagged by
   :meth:`FeedbackCorrector.should_reobserve` are withdrawn from the
   zero-cost catalog offer (forcing fresh observation), and each
   workflow's observation list is ordered most-misestimated first.

The corrector is deliberately stateful across nights -- hold one instance
per catalog for the life of a session (or the ``repro serve`` daemon) and
feed it every run via ``StatisticsPipeline.run_once(feedback=...)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.catalog.drift import _rel_error
from repro.catalog.signatures import SignatureError, WorkflowSigner
from repro.core.statistics import Statistic

#: relative error above which a prediction counts as a miss
DEFAULT_CORRECTION_THRESHOLD = 0.25

#: EWMA weight of the newest error sample
DEFAULT_SMOOTHING = 0.5

#: consecutive missed runs before a statistic is flagged for re-observation
DEFAULT_REOBSERVE_STREAK = 2


@dataclass
class FeedbackReport:
    """What one run's error stream taught the corrector."""

    observed: int = 0  # (estimate, actual) pairs consumed
    corrected: list[str] = field(default_factory=list)  # SE reprs fixed
    flagged: list[str] = field(default_factory=list)  # keys to re-observe
    mean_rel_error: float = 0.0
    max_rel_error: float = 0.0

    @property
    def corrections(self) -> int:
        return len(self.corrected)

    def describe(self) -> str:
        parts = [
            f"feedback: {self.observed} prediction(s) checked, "
            f"mean rel. error {self.mean_rel_error:.3f}"
        ]
        if self.corrected:
            parts.append(
                f"{len(self.corrected)} catalog entr"
                f"{'y' if len(self.corrected) == 1 else 'ies'} corrected "
                f"(worst {self.max_rel_error:.2f})"
            )
        if self.flagged:
            parts.append(f"{len(self.flagged)} flagged for re-observation")
        return "; ".join(parts)


class FeedbackCorrector:
    """Consumes per-operator estimation errors, corrects the catalog.

    ``catalog`` may be ``None`` for a pure re-ranking corrector (errors
    are remembered and fed to ``plan_fleet``, nothing is written).
    """

    def __init__(
        self,
        catalog=None,
        *,
        threshold: float = DEFAULT_CORRECTION_THRESHOLD,
        smoothing: float = DEFAULT_SMOOTHING,
        reobserve_streak: int = DEFAULT_REOBSERVE_STREAK,
    ):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.catalog = catalog
        self.threshold = float(threshold)
        self.smoothing = float(smoothing)
        self.reobserve_streak = int(reobserve_streak)
        #: statistic key -> smoothed relative error across runs
        self.errors: dict[str, float] = {}
        #: statistic key -> consecutive runs the prediction missed
        self.streaks: dict[str, int] = {}
        self.corrections_total = 0

    # ------------------------------------------------------------------
    def observe_run(
        self,
        signer: WorkflowSigner,
        estimates: dict,
        actuals: dict,
        *,
        workflow: str = "",
        run_id: str = "",
        backend: str = "",
        now: float | None = None,
        metrics=None,
    ) -> FeedbackReport:
        """Fold one run's estimated-vs-actual SE sizes into the corrector.

        ``estimates`` maps SEs to the row counts the optimizer believed
        (prior sizes + catalog cardinalities -- exactly what backs the
        trace layer's ``estimation_rel_error`` stream); ``actuals`` is
        the run's true ``se_sizes``.  Returns a :class:`FeedbackReport`;
        ``metrics`` receives ``feedback_*`` counters/gauges (the
        pipeline-level ``etl_catalog_corrections_total`` counter is
        recorded by :func:`repro.obs.record.record_run_metrics` from the
        report).
        """
        now = time.time() if now is None else now
        report = FeedbackReport()
        errors: list[float] = []
        for se in sorted(set(estimates) & set(actuals), key=repr):
            predicted = float(estimates[se])
            actual = float(actuals[se])
            err = _rel_error(predicted, actual)
            errors.append(err)
            report.max_rel_error = max(report.max_rel_error, err)
            try:
                key = signer.statistic_key(Statistic.card(se))
                se_key = signer.se_key(se)
            except SignatureError:
                continue
            previous = self.errors.get(key)
            self.errors[key] = (
                err
                if previous is None
                else self.smoothing * err + (1.0 - self.smoothing) * previous
            )
            if err <= self.threshold:
                self.streaks[key] = 0
                continue
            self.streaks[key] = self.streaks.get(key, 0) + 1
            if self.catalog is None:
                continue
            entry = self.catalog.get(key)
            if entry is None:
                continue
            # penalize first, then refresh in place with the observed
            # value carrying the penalized quality forward (mirrors the
            # drift scan's correction sequence)
            self.catalog.adjust_quality(key, err)
            self.catalog.record(
                key,
                se_key,
                Statistic.card(se),
                int(actual),
                workflow=workflow,
                run_id=run_id,
                backend=backend,
                observed_at=now,
                quality=self.catalog.get(key).quality,
            )
            report.corrected.append(repr(se))

        report.observed = len(errors)
        if errors:
            report.mean_rel_error = sum(errors) / len(errors)
        report.flagged = sorted(
            key for key in self.errors if self.should_reobserve(key)
        )
        self.corrections_total += len(report.corrected)

        if metrics is not None:
            labels = {"workflow": workflow} if workflow else {}
            if report.corrected:
                metrics.counter(
                    "feedback_corrections_total",
                    "catalog entries corrected from the error stream",
                ).inc(len(report.corrected), **labels)
            if errors:
                metrics.gauge(
                    "feedback_mean_rel_error",
                    "mean prediction error the corrector saw this run",
                ).set(report.mean_rel_error, **labels)
        return report

    # ------------------------------------------------------------------
    # re-ranking signal (consumed by plan_fleet)
    # ------------------------------------------------------------------
    def should_reobserve(self, key: str) -> bool:
        """Is this statistic misestimated persistently enough to force a
        fresh observation instead of trusting the catalog?"""
        return (
            self.streaks.get(key, 0) >= self.reobserve_streak
            or self.errors.get(key, 0.0) > self.threshold
        )

    def priority(self, key: "str | None") -> float:
        """Re-ranking weight: higher = observe sooner (smoothed error)."""
        if not key:
            return 0.0
        return self.errors.get(key, 0.0)


__all__ = [
    "DEFAULT_CORRECTION_THRESHOLD",
    "DEFAULT_REOBSERVE_STREAK",
    "DEFAULT_SMOOTHING",
    "FeedbackCorrector",
    "FeedbackReport",
]
