"""Drift detection: keep the catalog honest against tonight's run.

The catalog's value rests on a bet — that statistics observed on an
earlier night still describe tonight's data.  Following the adaptive
feedback loop of Adaptive Cardinality Estimation (arXiv:1711.08330), every
completed run closes the loop: the engine records the true size of every
plan point it materializes (``WorkflowRun.se_sizes``), whether or not a
tap was requested there, so each run yields a free ground-truth sample to
compare catalog predictions against.

:func:`reconcile_run` does three things, in order:

1. **refresh** — statistics actually tapped tonight overwrite their
   catalog entries (fresh observation beats any cached value), and the
   prediction error of the *old* entry is folded into its quality score;
2. **drift scan** — for every SE the run materialized, the catalog's
   cardinality prediction is compared with the true size; a relative
   error above ``threshold`` marks the SE as drifted.  Its cardinality
   entry is refreshed in place (the true size *is* a valid observation),
   while the histogram/distinct entries riding on the same SE are marked
   **stale** — the run never materialized their buckets, so they must be
   re-observed, and the stale flag is precisely what removes them from
   the next run's zero-cost offer;
3. **admission** — tapped statistics new to the catalog are inserted with
   full provenance.

Only the affected entries are touched: an injected 10× shift on one
source invalidates that source's statistics and the joins it feeds, and
nothing else.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.catalog.signatures import SignatureError, WorkflowSigner
from repro.catalog.store import StatisticsCatalog
from repro.core.statistics import Statistic, StatisticsStore

#: relative cardinality error above which an entry counts as drifted
DEFAULT_DRIFT_THRESHOLD = 0.5


@dataclass
class DriftReport:
    """What one reconciliation pass did to the catalog."""

    added: list[str] = field(default_factory=list)  # entry reprs
    refreshed: list[str] = field(default_factory=list)
    drifted: list[str] = field(default_factory=list)  # SE reprs that moved
    stale_marked: int = 0
    max_rel_error: float = 0.0

    @property
    def touched(self) -> int:
        return len(self.added) + len(self.refreshed)

    def describe(self) -> str:
        parts = [
            f"catalog reconcile: +{len(self.added)} new, "
            f"{len(self.refreshed)} refreshed"
        ]
        if self.drifted:
            parts.append(
                f"{len(self.drifted)} SE(s) drifted "
                f"(worst rel. error {self.max_rel_error:.2f}), "
                f"{self.stale_marked} entries marked stale"
            )
        return "; ".join(parts)


def _rel_error(predicted: float, actual: float) -> float:
    return abs(float(actual) - float(predicted)) / max(abs(float(predicted)), 1.0)


def reconcile_run(
    catalog: StatisticsCatalog,
    signer: WorkflowSigner,
    observations: StatisticsStore,
    se_sizes: dict,
    tapped,
    *,
    workflow: str = "",
    run_id: str = "",
    backend: str = "",
    threshold: float = DEFAULT_DRIFT_THRESHOLD,
    now: float | None = None,
    metrics=None,
) -> DriftReport:
    """Fold one completed run back into the catalog.

    ``observations`` is the run's tap output, ``se_sizes`` the true row
    counts of every materialized plan point, ``tapped`` the statistics
    that were actually instrumented tonight (catalog-covered statistics
    are *not* tapped, which is the whole point — their entries are
    validated through the drift scan instead).

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) receives
    the reconcile counters -- entries admitted/refreshed, SEs drifted,
    siblings marked stale -- and a histogram of the prediction errors the
    drift scan measured, labelled by workflow.
    """
    now = time.time() if now is None else now
    report = DriftReport()
    tapped = set(tapped)

    # 1 + 3: fresh observations refresh or admit entries
    refreshed_keys: set[str] = set()
    for stat in sorted(tapped, key=lambda s: s.sort_key()):
        if stat not in observations:
            continue  # a failed block's tap never fired
        try:
            key = signer.statistic_key(stat)
            se_key = signer.se_key(stat.se)
        except SignatureError:
            continue
        value = observations.get(stat)
        previous = catalog.get(key)
        quality = 1.0
        if previous is not None and not stat.is_histogram:
            err = _rel_error(previous.value(), value)
            report.max_rel_error = max(report.max_rel_error, err)
            quality = max(0.5, 1.0 - min(err, 1.0) / 2)
        catalog.record(
            key,
            se_key,
            stat,
            value,
            workflow=workflow,
            run_id=run_id,
            backend=backend,
            observed_at=now,
            quality=quality,
        )
        refreshed_keys.add(key)
        (report.refreshed if previous is not None else report.added).append(
            repr(stat)
        )

    # 2: drift scan over every materialized plan point
    for se in sorted(se_sizes, key=repr):
        actual = se_sizes[se]
        try:
            card_key = signer.statistic_key(Statistic.card(se))
            se_key = signer.se_key(se)
        except SignatureError:
            continue
        entry = catalog.get(card_key)
        if entry is None or card_key in refreshed_keys:
            continue
        err = _rel_error(entry.value(), actual)
        report.max_rel_error = max(report.max_rel_error, err)
        catalog.adjust_quality(card_key, err)
        if err <= threshold:
            continue
        report.drifted.append(repr(se))
        # the true size is itself a valid observation: refresh in place,
        # carrying the just-penalized quality score forward
        catalog.record(
            card_key,
            se_key,
            Statistic.card(se),
            actual,
            workflow=workflow,
            run_id=run_id,
            backend=backend,
            observed_at=now,
            quality=catalog.get(card_key).quality,
        )
        # ...but the buckets of sibling histogram/distinct entries were
        # not materialized tonight — force their re-observation
        siblings = [
            sibling.key
            for sibling in catalog.entries_on_se(se_key)
            if sibling.key != card_key and sibling.key not in refreshed_keys
        ]
        report.stale_marked += catalog.mark_stale(siblings)

    if metrics is not None:
        labels = {"workflow": workflow} if workflow else {}
        if report.added:
            metrics.counter(
                "catalog_entries_added_total", "statistics newly admitted"
            ).inc(len(report.added), **labels)
        if report.refreshed:
            metrics.counter(
                "catalog_entries_refreshed_total",
                "entries overwritten by fresh observations",
            ).inc(len(report.refreshed), **labels)
        if report.drifted:
            metrics.counter(
                "catalog_drifted_total", "SEs whose prediction drifted"
            ).inc(len(report.drifted), **labels)
        if report.stale_marked:
            metrics.counter(
                "catalog_stale_marked_total",
                "sibling entries forced to re-observation",
            ).inc(report.stale_marked, **labels)
        metrics.gauge(
            "catalog_max_rel_error", "worst prediction error this reconcile"
        ).set(report.max_rel_error, **labels)

    return report


def invalidate_schema_drift(
    catalog: StatisticsCatalog,
    signer: WorkflowSigner,
    analysis,
    sources,
    *,
    metrics=None,
    workflow: str = "",
) -> int:
    """Mark stale every entry on an SE touching a schema-drifted source.

    Value drift (the scan above) compares numbers; *schema* drift --
    detected by the quality gate's :func:`repro.quality.drift
    .reconcile_schema` -- means the source's shape changed upstream, so
    every statistic whose sub-expression involves that source describes a
    table that no longer exists.  Marking the entries stale removes them
    from the zero-cost offer and forces their re-observation over the
    reconciled schema; tonight's own (post-screening) observations re-admit
    them through :func:`reconcile_run` in the same reconcile pass.

    ``sources`` are drifted *base* names (e.g. ``{"customers"}``); they
    are mapped to each block's input and stage relation names, then to the
    block's SE universe and post stages.  Returns the number of entries
    newly marked stale.
    """
    sources = set(sources)
    if not sources:
        return 0
    se_keys: set[str] = set()
    for block in analysis.blocks:
        touched: set[str] = set()
        for name, inp in block.inputs.items():
            if inp.base_name in sources:
                touched.add(name)
                touched.update(inp.stage_names())
        if not touched:
            continue
        # the block's post stages derive from a join that includes the
        # drifted input, so they are suspect regardless of relation names
        post = set(block.post_stage_ses())
        for se in block.universe():
            if not (se.relations & touched) and se not in post:
                continue
            try:
                se_keys.add(signer.se_key(se))
            except SignatureError:
                continue
    marked = 0
    for se_key in sorted(se_keys):
        marked += catalog.mark_stale(
            entry.key for entry in catalog.entries_on_se(se_key)
        )
    if metrics is not None and marked:
        labels = {"workflow": workflow} if workflow else {}
        metrics.counter(
            "catalog_schema_invalidated_total",
            "entries invalidated by upstream schema drift",
        ).inc(marked, **labels)
    return marked


__all__ = [
    "DEFAULT_DRIFT_THRESHOLD",
    "DriftReport",
    "invalidate_schema_drift",
    "reconcile_run",
]
