"""Persistent statistics catalog: cross-workflow sharing of observations.

The subsystem turns per-run, per-workflow statistics observation into a
fleet-wide, incrementally maintained asset:

- :mod:`repro.catalog.signatures` — canonical, schema-aware identities
  for statistics and sub-expressions, stable across workflows and plans;
- :mod:`repro.catalog.store` — the versioned, file-backed
  :class:`StatisticsCatalog` with per-entry provenance, TTL and GC;
- :mod:`repro.catalog.drift` — per-run reconciliation: fresh runs refresh
  entries, drifted entries are penalized and marked stale so only they
  get re-observed;
- :mod:`repro.catalog.fleet` — one combined nightly observation plan for
  a whole suite of workflows, observing each shared statistic once;
- :mod:`repro.catalog.feedback` — the adaptive corrector: per-operator
  estimation errors correct drifted cardinality entries in place and
  re-rank what the fleet observes next.
"""

from repro.catalog.drift import (
    DEFAULT_DRIFT_THRESHOLD,
    DriftReport,
    reconcile_run,
)
from repro.catalog.feedback import (
    DEFAULT_CORRECTION_THRESHOLD,
    FeedbackCorrector,
    FeedbackReport,
)
from repro.catalog.fleet import FleetPlan, WorkflowObservationPlan, plan_fleet
from repro.catalog.signatures import SignatureError, WorkflowSigner
from repro.catalog.store import (
    DEFAULT_MIN_QUALITY,
    DEFAULT_TTL,
    CatalogEntry,
    CatalogHits,
    StatisticsCatalog,
)

__all__ = [
    "DEFAULT_CORRECTION_THRESHOLD",
    "DEFAULT_DRIFT_THRESHOLD",
    "DEFAULT_MIN_QUALITY",
    "DEFAULT_TTL",
    "CatalogEntry",
    "CatalogHits",
    "DriftReport",
    "FeedbackCorrector",
    "FeedbackReport",
    "FleetPlan",
    "SignatureError",
    "StatisticsCatalog",
    "WorkflowObservationPlan",
    "WorkflowSigner",
    "plan_fleet",
    "reconcile_run",
]
