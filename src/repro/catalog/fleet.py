"""Fleet observation planning: one nightly plan for N workflows.

The paper selects an optimal statistics set *per workflow*.  A nightly
batch runs many workflows whose sub-expressions overlap heavily (the
evaluation's 30 TPC-DI workflows share dimension tables, staged feeds and
whole join subtrees), so planning each workflow in isolation pays for the
same statistic many times — the observation-cost analogue of the shared
dataflow caching of arXiv:1409.1639.

:func:`plan_fleet` computes one combined plan: workflows are planned in
sequence, and every statistic some earlier workflow (or the persistent
catalog) already covers enters the later selection problems at **zero
cost** through the same mechanism as Section 6.2 source statistics.  Each
shared statistic is therefore observed by exactly one workflow per night;
every other workflow consumes the value from the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.blocks import analyze
from repro.catalog.signatures import SignatureError, WorkflowSigner
from repro.catalog.store import StatisticsCatalog
from repro.core.costs import CostModel
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.greedy import solve_greedy
from repro.core.ilp import solve_ilp
from repro.core.selection import SelectionResult, build_problem
from repro.core.statistics import Statistic


@dataclass
class WorkflowObservationPlan:
    """One workflow's share of the combined nightly plan."""

    name: str
    selection: SelectionResult
    observe: list[Statistic]  # statistics this workflow actually taps
    shared: dict[Statistic, str]  # covered stat -> provider ("catalog" | wf)
    standalone_cost: float  # cost if this workflow planned alone
    planned_cost: float  # cost of the statistics it observes in the fleet

    @property
    def saved(self) -> float:
        return self.standalone_cost - self.planned_cost


@dataclass
class FleetPlan:
    """The combined observation plan for one night across the fleet."""

    workflows: list[WorkflowObservationPlan] = field(default_factory=list)

    @property
    def total_standalone_cost(self) -> float:
        return sum(w.standalone_cost for w in self.workflows)

    @property
    def total_planned_cost(self) -> float:
        return sum(w.planned_cost for w in self.workflows)

    @property
    def unique_observations(self) -> int:
        return sum(len(w.observe) for w in self.workflows)

    @property
    def shared_count(self) -> int:
        return sum(len(w.shared) for w in self.workflows)

    def describe(self) -> str:
        lines = [
            f"fleet plan: {len(self.workflows)} workflow(s), "
            f"{self.unique_observations} observation(s), "
            f"{self.shared_count} shared/catalog-covered",
            f"observation cost: standalone {self.total_standalone_cost:g} "
            f"-> combined {self.total_planned_cost:g}",
        ]
        for plan in self.workflows:
            providers = sorted(
                {provider for provider in plan.shared.values()}
            )
            note = f" (reusing from {', '.join(providers)})" if providers else ""
            lines.append(
                f"  {plan.name}: observe {len(plan.observe)} "
                f"(cost {plan.planned_cost:g}, alone {plan.standalone_cost:g})"
                f"{note}"
            )
        return "\n".join(lines)


def plan_fleet(
    workflows,
    catalog: StatisticsCatalog | None = None,
    *,
    solver: str = "greedy",
    generator_options: GeneratorOptions | None = None,
    now: float | None = None,
    feedback=None,
) -> FleetPlan:
    """Compute the combined nightly observation plan.

    ``workflows`` is an iterable of :class:`~repro.algebra.operators
    .Workflow` objects (order matters: earlier workflows claim shared
    statistics, later ones reuse them for free).  ``catalog``, when given,
    contributes its usable entries as zero-cost statistics for *every*
    workflow — pre-existing knowledge nobody needs to observe tonight.

    ``feedback`` (a :class:`~repro.catalog.feedback.FeedbackCorrector`)
    re-ranks the plan from the estimation-error stream: statistics it
    flags via ``should_reobserve`` are withdrawn from the zero-cost
    catalog offer (their cached values misled the optimizer, so tonight
    re-observes them), and each workflow's ``observe`` list is ordered
    by ``priority`` so persistently misestimated statistics come first.
    """
    options = generator_options or GeneratorOptions()
    solve = solve_greedy if solver == "greedy" else solve_ilp
    catalog_keys = catalog.usable_keys(now) if catalog is not None else set()
    if feedback is not None:
        catalog_keys = {
            key for key in catalog_keys if not feedback.should_reobserve(key)
        }

    #: signature -> workflow name that will observe it tonight
    claimed: dict[str, str] = {}
    fleet = FleetPlan()

    for workflow in workflows:
        analysis = analyze(workflow)
        css = generate_css(analysis, options)
        signer = WorkflowSigner(analysis)
        cost_model = CostModel(workflow.catalog)

        keys: dict[Statistic, str] = {}
        for stat in css.all_statistics:
            try:
                keys[stat] = signer.statistic_key(stat)
            except SignatureError:
                continue
        free = {
            stat
            for stat, key in keys.items()
            if key in claimed or key in catalog_keys
        }

        standalone = solve(build_problem(css, cost_model))
        selection = solve(
            build_problem(css, cost_model, free_statistics=free)
        )

        observe: list[Statistic] = []
        shared: dict[Statistic, str] = {}
        planned_cost = 0.0
        for stat in selection.observed:
            key = keys.get(stat)
            if key is not None and key in claimed:
                shared[stat] = claimed[key]
                continue
            if key is not None and key in catalog_keys:
                shared[stat] = "catalog"
                continue
            observe.append(stat)
            planned_cost += selection.problem.costs[
                selection.problem.index[stat]
            ]
            if key is not None:
                claimed[key] = workflow.name

        if feedback is not None and observe:
            # stable sort: misestimated statistics first, untouched
            # solver order otherwise
            observe.sort(
                key=lambda stat: -feedback.priority(keys.get(stat))
            )

        fleet.workflows.append(
            WorkflowObservationPlan(
                name=workflow.name,
                selection=selection,
                observe=observe,
                shared=shared,
                standalone_cost=standalone.total_cost,
                planned_cost=planned_cost,
            )
        )
    return fleet


__all__ = ["FleetPlan", "WorkflowObservationPlan", "plan_fleet"]
