"""The persistent, cross-workflow statistics catalog.

Section 6.2 integrates pre-existing source statistics at zero cost into
CSS selection; the catalog generalizes that idea to *every* statistic any
workflow in the fleet ever observed.  Entries are keyed by the canonical
signatures of :mod:`repro.catalog.signatures`, so the same statistic
reached via different workflows (or via a redesigned plan of the same
workflow) lands on one key, and tonight's observation in workflow A is
tomorrow's zero-cost statistic in workflow B.

Each entry carries:

- the **value** (counter / distinct count / exact histogram), serialized
  with the same machinery as :mod:`repro.core.persistence`;
- **provenance**: which workflow and run observed it, on which execution
  backend, and when;
- **quality**: a [0, 1] score maintained by the drift detector
  (:mod:`repro.catalog.drift`) plus a ``stale`` flag — stale entries are
  never offered to the selection problem, which is exactly what forces
  their re-observation on the next run;
- a human-readable ``repr`` of the statistic (keys are hashes; the repr
  keeps ``repro-etl catalog show`` and catalog diffs meaningful).

The file format rides on :mod:`repro.core.persistence`'s
``format_version`` machinery: atomic writes, validated loads, sorted keys
— a catalog is a git-diffable JSON document.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path

try:  # advisory flock; absent on some platforms -> O_EXCL fallback
    import fcntl
except ImportError:  # pragma: no cover - posix everywhere we run
    fcntl = None

from repro.core.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    _load_json,
    atomic_write_json,
    statistic_from_dict,
    statistic_to_dict,
    value_from_doc,
    value_to_doc,
)
from repro.core.statistics import Statistic, StatisticsStore, StatValue

#: catalog entries older than this many seconds are expired by default
DEFAULT_TTL = 30 * 24 * 3600.0

#: entries whose quality score sinks below this are not offered for reuse
DEFAULT_MIN_QUALITY = 0.5

#: how long :func:`catalog_lock` waits for a contended lock
DEFAULT_LOCK_TIMEOUT = 10.0

#: a lock file untouched for this long belongs to a dead run -- take it over
DEFAULT_LOCK_STALE = 120.0


def _try_lock(fd: int) -> bool:
    if fcntl is not None:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            return True
        except OSError:
            return False
    return True  # O_EXCL creation below is the lock on fcntl-less platforms


@dataclass
class CatalogLockHandle:
    """Proof of a held :func:`catalog_lock`, carrying its fence token.

    Stale takeover unlinks the *path*, but a paused holder's ``flock`` is
    on the old inode -- the two holders do not conflict at the OS level.
    The token written into the lock file is what disambiguates them:
    :meth:`validate` re-reads the file at the path and raises unless it
    still carries *this* holder's token, so a holder that slept through
    its own takeover aborts its write instead of clobbering the
    successor's.
    """

    path: Path  # the <catalog>.lock sidecar
    token: str

    def held(self) -> bool:
        """Does the lock file still carry this holder's fence token?"""
        try:
            content = self.path.read_text()
        except OSError:
            return False
        return f"token={self.token}" in content

    def validate(self) -> None:
        """Raise unless this holder still owns the lock (fence check)."""
        if not self.held():
            raise PersistenceError(
                f"lock {self.path} was taken over while held (stale-lock "
                "takeover by another run); aborting the write instead of "
                "clobbering the new holder's"
            )


@contextmanager
def catalog_lock(
    path: str | Path,
    timeout: float = DEFAULT_LOCK_TIMEOUT,
    stale_after: float = DEFAULT_LOCK_STALE,
    poll: float = 0.05,
):
    """Advisory lock serializing read-modify-write on one catalog file.

    Two concurrent nightly fleet runs that ``save()`` the same catalog
    used to interleave plain read/write and silently drop each other's
    entries; holding this lock around reload-merge-write makes the last
    writer *add* rather than clobber.

    The lock is an ``fcntl.flock`` on a ``<catalog>.lock`` sidecar (an
    ``O_EXCL``-created sidecar where ``fcntl`` is unavailable).  Stale
    takeover: a lock file whose mtime is older than ``stale_after`` is a
    dead run's leftover -- it is unlinked and acquisition retries, so one
    crashed fleet run never wedges every later night.  A *live* contender
    wins a :class:`~repro.core.persistence.PersistenceError` after
    ``timeout`` seconds instead of deadlocking the fleet.

    Yields a :class:`CatalogLockHandle` whose fence token fixes the
    takeover race: a holder paused past ``stale_after`` (a stopped VM, a
    20-minute GC pause) comes back believing it holds a lock somebody
    else has since taken over.  Its handle's :meth:`~CatalogLockHandle.
    validate` fails -- :meth:`StatisticsCatalog.save` calls it right
    before the write -- so the zombie aborts instead of overwriting the
    successor's merge.
    """
    lock_path = Path(str(path) + ".lock")
    token = f"{os.getpid()}-{os.urandom(8).hex()}"
    deadline = time.monotonic() + timeout
    fd: int | None = None
    try:
        while True:
            flags = os.O_CREAT | os.O_RDWR
            if fcntl is None:
                flags |= os.O_EXCL
            try:
                fd = os.open(lock_path, flags, 0o644)
            except FileExistsError:
                fd = None  # O_EXCL path: somebody holds it
            if fd is not None and _try_lock(fd):
                os.truncate(fd, 0)
                os.write(fd, f"pid={os.getpid()}\ntoken={token}\n".encode())
                os.utime(lock_path)  # freshness signal for stale takeover
                break
            if fd is not None:
                os.close(fd)
                fd = None
            try:
                age = time.time() - lock_path.stat().st_mtime
            except OSError:
                continue  # holder vanished between attempts; retry now
            if age > stale_after:
                try:
                    lock_path.unlink()
                except OSError:  # pragma: no cover - racing another takeover
                    pass
                continue
            if time.monotonic() >= deadline:
                raise PersistenceError(
                    f"catalog {path} is locked by another run "
                    f"(lock {lock_path}, held {age:.0f}s); remove the lock "
                    "file if that run is dead"
                )
            time.sleep(poll)
        handle = CatalogLockHandle(path=lock_path, token=token)
        yield handle
    finally:
        if fd is not None:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                except OSError:  # pragma: no cover - unlock cannot fail here
                    pass
            os.close(fd)
            # only remove the file if it is still *ours* -- after a
            # takeover the path belongs to the new holder
            if CatalogLockHandle(path=lock_path, token=token).held():
                try:
                    lock_path.unlink()
                except OSError:  # pragma: no cover - racing a takeover
                    pass


@dataclass(frozen=True)
class CatalogEntry:
    """One catalogued statistic value with provenance and quality."""

    key: str  # canonical statistic signature digest
    se_key: str  # canonical SE signature digest (groups entries per SE)
    stat_doc: dict  # workflow-local statistic description (provenance)
    value_doc: dict  # serialized value ({"value": ...} | {"histogram": ...})
    repr: str
    workflow: str = ""
    run_id: str = ""
    backend: str = ""
    observed_at: float = 0.0
    quality: float = 1.0
    stale: bool = False
    hits: int = 0

    @property
    def kind(self) -> str:
        return self.stat_doc.get("kind", "?")

    def value(self) -> StatValue:
        return value_from_doc(self.value_doc)

    def statistic(self) -> Statistic:
        """The (workflow-local) statistic this entry was recorded under."""
        return statistic_from_dict(self.stat_doc)

    def expired(self, now: float, ttl: float) -> bool:
        return now - self.observed_at > ttl

    def usable(self, now: float, ttl: float, min_quality: float) -> bool:
        return (
            not self.stale
            and self.quality >= min_quality
            and not self.expired(now, ttl)
        )

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "se_key": self.se_key,
            "stat": self.stat_doc,
            **self.value_doc,
            "repr": self.repr,
            "workflow": self.workflow,
            "run_id": self.run_id,
            "backend": self.backend,
            "observed_at": self.observed_at,
            "quality": self.quality,
            "stale": self.stale,
            "hits": self.hits,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CatalogEntry":
        try:
            if "histogram" in doc:
                value_doc = {"histogram": doc["histogram"]}
            else:
                value_doc = {"value": doc["value"]}
            return cls(
                key=doc["key"],
                se_key=doc.get("se_key", ""),
                stat_doc=doc["stat"],
                value_doc=value_doc,
                repr=doc.get("repr", ""),
                workflow=doc.get("workflow", ""),
                run_id=doc.get("run_id", ""),
                backend=doc.get("backend", ""),
                observed_at=float(doc.get("observed_at", 0.0)),
                quality=float(doc.get("quality", 1.0)),
                stale=bool(doc.get("stale", False)),
                hits=int(doc.get("hits", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(f"corrupt catalog entry {doc!r}: {exc}") from exc


@dataclass
class CatalogHits:
    """The slice of the catalog covering one workflow's candidate stats."""

    free: set[Statistic] = field(default_factory=set)
    values: StatisticsStore = field(default_factory=StatisticsStore)
    keys: dict[Statistic, str] = field(default_factory=dict)
    newest_observed_at: float = 0.0

    def __len__(self) -> int:
        return len(self.free)


class StatisticsCatalog:
    """File-backed store of statistics shared across workflows and runs."""

    def __init__(
        self,
        path: str | Path | None = None,
        ttl: float = DEFAULT_TTL,
        min_quality: float = DEFAULT_MIN_QUALITY,
    ):
        self.path = Path(path) if path is not None else None
        self.ttl = ttl
        self.min_quality = min_quality
        self.entries: dict[str, CatalogEntry] = {}

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str | Path,
        ttl: float = DEFAULT_TTL,
        min_quality: float = DEFAULT_MIN_QUALITY,
    ) -> "StatisticsCatalog":
        """Load the catalog at ``path``, or start an empty one there."""
        catalog = cls(path, ttl=ttl, min_quality=min_quality)
        if Path(path).exists():
            doc = _load_json(path, "catalog")
            catalog._load_doc(doc)
        return catalog

    def _load_doc(self, doc: dict) -> None:
        entries = doc.get("entries", [])
        if not isinstance(entries, list):
            raise PersistenceError("corrupt catalog: 'entries' is not a list")
        for entry_doc in entries:
            entry = CatalogEntry.from_dict(entry_doc)
            self.entries[entry.key] = entry

    def to_dict(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "kind": "statistics-catalog",
            "entries": [
                self.entries[key].to_dict() for key in sorted(self.entries)
            ],
        }

    def save(self, path: str | Path | None = None, merge: bool = True) -> None:
        """Persist the catalog under the advisory file lock.

        With ``merge`` (the default) the on-disk catalog is re-read inside
        the lock and folded in first (newer ``observed_at`` wins), so two
        concurrent fleet runs saving the same file converge to the union
        of their entries instead of the last writer dropping the other's.
        Deliberate removals (``gc``) must pass ``merge=False`` or the
        merge would resurrect every entry they just dropped.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise PersistenceError("catalog has no path to save to")
        with catalog_lock(target) as lock:
            if merge and target.exists():
                try:
                    disk = StatisticsCatalog.open(
                        target, ttl=self.ttl, min_quality=self.min_quality
                    )
                except PersistenceError:
                    pass  # corrupt on-disk catalog: ours replaces it
                else:
                    for key, entry in disk.entries.items():
                        mine = self.entries.get(key)
                        if mine is None or entry.observed_at > mine.observed_at:
                            self.entries[key] = entry
            # fence check: if we slept past the stale deadline and another
            # run took the lock over, fail here rather than clobber it
            lock.validate()
            atomic_write_json(self.to_dict(), target)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def get(self, key: str) -> CatalogEntry | None:
        return self.entries.get(key)

    def usable_keys(self, now: float | None = None) -> set[str]:
        now = time.time() if now is None else now
        return {
            key
            for key, entry in self.entries.items()
            if entry.usable(now, self.ttl, self.min_quality)
        }

    def lookup(
        self,
        signer,
        stats,
        now: float | None = None,
        count_hits: bool = True,
    ) -> CatalogHits:
        """Match a workflow's candidate statistics against the catalog.

        Returns the statistics the catalog can satisfy — they enter the
        selection problem at zero cost and their values back the estimator
        without being re-observed.  Stale, expired and low-quality entries
        never match (that is what triggers their re-observation).
        """
        from repro.catalog.signatures import SignatureError

        now = time.time() if now is None else now
        hits = CatalogHits()
        for stat in stats:
            try:
                key = signer.statistic_key(stat)
            except SignatureError:
                continue
            entry = self.entries.get(key)
            if entry is None or not entry.usable(now, self.ttl, self.min_quality):
                continue
            hits.free.add(stat)
            hits.values.put(stat, entry.value())
            hits.keys[stat] = key
            hits.newest_observed_at = max(
                hits.newest_observed_at, entry.observed_at
            )
            if count_hits:
                self.entries[key] = replace(entry, hits=entry.hits + 1)
        return hits

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def record(
        self,
        key: str,
        se_key: str,
        stat: Statistic,
        value: StatValue,
        *,
        workflow: str = "",
        run_id: str = "",
        backend: str = "",
        observed_at: float | None = None,
        quality: float | None = None,
    ) -> CatalogEntry:
        """Insert or refresh one observed statistic."""
        previous = self.entries.get(key)
        entry = CatalogEntry(
            key=key,
            se_key=se_key,
            stat_doc=statistic_to_dict(stat),
            value_doc=value_to_doc(value),
            repr=repr(stat),
            workflow=workflow,
            run_id=run_id,
            backend=backend,
            observed_at=time.time() if observed_at is None else observed_at,
            quality=1.0 if quality is None else quality,
            stale=False,
            hits=previous.hits if previous is not None else 0,
        )
        self.entries[key] = entry
        return entry

    def mark_stale(self, keys) -> int:
        """Flag entries so the next run re-observes them; returns count."""
        marked = 0
        for key in keys:
            entry = self.entries.get(key)
            if entry is not None and not entry.stale:
                self.entries[key] = replace(entry, stale=True)
                marked += 1
        return marked

    def entries_on_se(self, se_key: str) -> list[CatalogEntry]:
        """Every entry describing a statistic on the given SE."""
        return sorted(
            (e for e in self.entries.values() if e.se_key == se_key),
            key=lambda e: e.key,
        )

    def adjust_quality(self, key: str, rel_error: float) -> None:
        """Blend a fresh prediction error into an entry's quality score."""
        entry = self.entries.get(key)
        if entry is None:
            return
        accuracy = max(0.0, 1.0 - min(rel_error, 1.0))
        self.entries[key] = replace(
            entry, quality=0.5 * entry.quality + 0.5 * accuracy
        )

    def gc(
        self,
        now: float | None = None,
        ttl: float | None = None,
        min_quality: float | None = None,
        drop_stale: bool = True,
    ) -> int:
        """Drop expired, low-quality and (optionally) stale entries."""
        now = time.time() if now is None else now
        ttl = self.ttl if ttl is None else ttl
        min_quality = self.min_quality if min_quality is None else min_quality
        doomed = [
            key
            for key, entry in self.entries.items()
            if entry.expired(now, ttl)
            or entry.quality < min_quality
            or (drop_stale and entry.stale)
        ]
        for key in doomed:
            del self.entries[key]
        return len(doomed)

    def merge(self, other: "StatisticsCatalog") -> int:
        """Import entries from another catalog; newer observation wins."""
        imported = 0
        for key, entry in other.entries.items():
            mine = self.entries.get(key)
            if mine is None or entry.observed_at > mine.observed_at:
                self.entries[key] = entry
                imported += 1
        return imported

    # ------------------------------------------------------------------
    def describe(self, stale_only: bool = False) -> str:
        now = time.time()
        lines = [
            f"catalog: {len(self.entries)} entries "
            f"({len(self.usable_keys(now))} usable, ttl {self.ttl:g}s)"
        ]
        for key in sorted(self.entries):
            entry = self.entries[key]
            if stale_only and not entry.stale:
                continue
            age = now - entry.observed_at
            flags = []
            if entry.stale:
                flags.append("stale")
            if entry.expired(now, self.ttl):
                flags.append("expired")
            if entry.quality < self.min_quality:
                flags.append("low-quality")
            note = f" [{','.join(flags)}]" if flags else ""
            lines.append(
                f"  {key[:12]} {entry.repr}  q={entry.quality:.2f} "
                f"hits={entry.hits} age={age:.0f}s "
                f"from={entry.workflow or '?'}/{entry.run_id or '?'}"
                f"{note}"
            )
        return "\n".join(lines)


__all__ = [
    "DEFAULT_LOCK_STALE",
    "DEFAULT_LOCK_TIMEOUT",
    "DEFAULT_MIN_QUALITY",
    "DEFAULT_TTL",
    "CatalogEntry",
    "CatalogHits",
    "CatalogLockHandle",
    "StatisticsCatalog",
    "catalog_lock",
]
