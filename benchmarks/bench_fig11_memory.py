"""Figure 11: memory required for observing the optimal statistics.

Per workflow: the optimal observation cost (abstract integer units,
Section 5.4) without and with the union-division CSSs.  Shapes to
reproduce:

- union-division never increases the optimum (it only adds alternatives)
  and strictly reduces it for some workflows (paper: workflow 3 dropped
  from 1,811,197 to 29,922 units);
- for other workflows its CSSs lose on cost and are simply not chosen
  (paper: workflow 23).

Costs follow the paper's recipe: the conservative domain-size bound, capped
by the SE size estimated with first-run independence bootstrapping
(Section 5.4's "coarse approximation").
"""

from conftest import ILP_TIME_LIMIT, write_report

from repro.experiments import SuiteContext, fig11_rows


def test_fig11_memory(benchmark, workflow_analyses, results_dir):
    context = SuiteContext(
        [c for c, _w, _a in workflow_analyses],
        [w for _c, w, _a in workflow_analyses],
        [a for _c, _w, a in workflow_analyses],
    )
    header, rows = benchmark.pedantic(
        fig11_rows, args=(context,), kwargs={"time_limit": ILP_TIME_LIMIT},
        rounds=1, iterations=1,
    )
    write_report(
        results_dir,
        "fig11_memory",
        "Figure 11: memory units for the optimal statistics "
        "(without vs with union-division)",
        header,
        [[wf, f"{noud:.0f}", f"{ud:.0f}", tag] for wf, noud, ud, tag in rows],
    )
    # union-division never hurts...
    assert all(ud <= noud + 1e-6 for _wf, noud, ud, _tag in rows)
    # ...helps at least somewhere...
    wins = [wf for wf, noud, ud, _tag in rows if ud < noud - 1e-6]
    assert len(wins) >= 2
    # ...and is not chosen where it does not pay off (ties elsewhere)
    ties = [wf for wf, noud, ud, _tag in rows if abs(ud - noud) <= 1e-6]
    assert ties
