"""Micro-benchmarks over the paper's worked examples (Figures 1, 5-8).

Times the individual pipeline stages on the Orders/Product/Customer flow
(Figure 1 / Figure 6) and validates the intro's headline result: executing
plan 1(a) lets the framework cover everything with |O x P| observed
directly plus two single-attribute histograms -- no multi-attribute
distribution needed.
"""

from conftest import write_report

from repro.algebra.blocks import analyze
from repro.algebra.expressions import SubExpression
from repro.algebra.operators import Join, Source, Target, Workflow
from repro.algebra.schema import Catalog
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.core.statistics import Statistic

SE = SubExpression.of


def orders_product_customer():
    cat = Catalog()
    cat.add_relation("Orders", {"pid": 100, "cid": 200, "oid": 2000})
    cat.add_relation("Product", {"pid": 100, "pname": 90})
    cat.add_relation("Customer", {"cid": 200, "cname": 180})
    o, p, c = Source(cat, "Orders"), Source(cat, "Product"), Source(cat, "Customer")
    flow = Join(Join(o, p, "pid"), c, "cid")  # plan 1(a)
    return Workflow("fig1a", cat, [Target(flow, "W")])


def test_fig6_css_generation(benchmark):
    analysis = analyze(orders_product_customer())
    catalog = benchmark(generate_css, analysis)
    counts = catalog.counts()
    assert counts["required"] == 6  # O, P, C, OP, OC, OPC
    assert counts["css"] > 10


def test_fig1_selection(benchmark, results_dir):
    workflow = orders_product_customer()
    analysis = analyze(workflow)
    catalog = generate_css(analysis)
    problem = build_problem(catalog, CostModel(workflow.catalog))
    result = benchmark(solve_ilp, problem)
    assert result.is_valid
    observed = set(result.observed)
    # the intro's claim: with plan 1(a) executed, |Orders x Product| is
    # observed directly, and only the Customer_id distributions on Orders
    # and Customer are needed -- "no multi-attribute distribution"
    assert Statistic.card(SE("Orders", "Product")) in observed
    assert Statistic.hist(SE("Orders"), "cid") in observed
    assert Statistic.hist(SE("Customer"), "cid") in observed
    assert all(len(s.attrs) <= 1 for s in observed)
    write_report(
        results_dir,
        "fig1_intro_example",
        "Intro example (Figure 1a): chosen statistics",
        ["statistic", "cost"],
        [
            [repr(s), f"{problem.costs[problem.index[s]]:g}"]
            for s in result.observed
        ],
    )
