"""Ablation: how much metadata shrinks the statistics bill.

The conclusion of the paper: "The use of metadata, cross-product rules and
rules for cardinality estimation drastically reduces the statistics that
are needed".  This bench quantifies each ingredient on the suite:

- FK-lookup rules (Section 3.2.2 / 6): with lookup metadata, most SE
  cardinalities derive from the fact table's counters;
- existing source statistics (Section 6.2): free catalog statistics
  displace paid observations.
"""

from conftest import ILP_TIME_LIMIT, write_report

from repro.core.costs import CostModel
from repro.core.external import harvest_source_statistics
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.estimation.bootstrap import bootstrap_se_sizes

SAMPLE = [9, 11, 13, 14, 19, 26, 28, 30]


def _metadata_sweep(analyses):
    by_number = {case.number: (case, wf, an) for case, wf, an in analyses}
    rows = []
    for number in SAMPLE:
        case, workflow, analysis = by_number[number]
        cards, dv = case.characteristics(scale=1.0)
        cost_model = CostModel(
            workflow.catalog, se_sizes=bootstrap_se_sizes(analysis, cards, dv)
        )
        plain = solve_ilp(
            build_problem(
                generate_css(analysis, GeneratorOptions(fk_rules=False)),
                cost_model,
            ),
            time_limit=ILP_TIME_LIMIT,
        )
        with_fk = solve_ilp(
            build_problem(generate_css(analysis), cost_model),
            time_limit=ILP_TIME_LIMIT,
        )
        sources = case.tables(scale=0.1, seed=2)
        free, _values = harvest_source_statistics(sources)
        with_free = solve_ilp(
            build_problem(
                generate_css(analysis, GeneratorOptions(fk_rules=False)),
                cost_model,
                free_statistics=free,
            ),
            time_limit=ILP_TIME_LIMIT,
        )
        rows.append(
            (
                number,
                f"{plain.total_cost:.0f}",
                f"{with_fk.total_cost:.0f}",
                f"{with_free.total_cost:.0f}",
            )
        )
    return rows


def test_metadata_ablation(benchmark, workflow_analyses, results_dir):
    rows = benchmark.pedantic(
        _metadata_sweep, args=(workflow_analyses,), rounds=1, iterations=1
    )
    write_report(
        results_dir,
        "ablation_metadata",
        "Ablation: observation cost (memory units) without metadata, with "
        "FK-lookup rules, and with free source statistics",
        ["wf", "no metadata", "FK rules", "source stats free"],
        [list(r) for r in rows],
    )
    for _wf, plain, fk, free in rows:
        assert float(fk) <= float(plain)
        assert float(free) <= float(plain)
    # FK metadata collapses star-join workflows to counter-only bills
    assert any(float(fk) < float(plain) / 10 for _wf, plain, fk, _ in rows)
