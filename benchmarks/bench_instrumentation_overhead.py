"""Ablation: runtime overhead of statistics instrumentation.

The framework's premise is that observing the chosen statistics during a
normal run is cheap (counters and bounded histograms, one update per tuple
-- the Section 5.4 CPU metric).  We measure wall time of the streaming
executor on the same workflow and data:

- bare: no taps at all;
- counters: the trivial CSSs of every plan point;
- full: the ILP-chosen optimal statistics set (histograms included).

Shape to reproduce: instrumentation costs a modest constant factor, far
from the alternative of extra executions.
"""

import time

from conftest import DATA_SCALE, write_report

from repro.algebra.blocks import analyze
from repro.algebra.plans import tree_ses
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.core.statistics import Statistic
from repro.engine.streaming import StreamExecutor, StreamingTaps
from repro.workloads import case

WORKFLOW = 14
REPEATS = 3


def _overhead():
    wfcase = case(WORKFLOW)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis)
    selection = solve_ilp(
        build_problem(catalog, CostModel(workflow.catalog)), time_limit=20
    )
    tables = wfcase.tables(scale=DATA_SCALE, seed=19)
    executor = StreamExecutor(analysis)

    counter_stats = []
    for block in analysis.blocks:
        for se in tree_ses(block.initial_tree):
            counter_stats.append(Statistic.card(se))

    def timed(stats):
        best = float("inf")
        for _ in range(REPEATS):
            taps = StreamingTaps(stats)
            t0 = time.perf_counter()
            executor.run(tables, taps=taps)
            best = min(best, time.perf_counter() - t0)
        return best

    bare = timed([])
    counters = timed(counter_stats)
    full = timed(selection.observed)
    return [
        ("bare", round(bare * 1e3, 1), 1.0),
        ("counters (trivial CSSs)", round(counters * 1e3, 1),
         round(counters / bare, 2)),
        ("optimal statistics set", round(full * 1e3, 1),
         round(full / bare, 2)),
    ]


def test_instrumentation_overhead(benchmark, results_dir):
    rows = benchmark.pedantic(_overhead, rounds=1, iterations=1)
    write_report(
        results_dir,
        "instrumentation_overhead",
        f"Per-tuple instrumentation overhead (streaming executor, wf{WORKFLOW})",
        ["instrumentation", "best wall ms", "x bare"],
        [list(r) for r in rows],
    )
    factors = {r[0]: r[2] for r in rows}
    # observing everything the optimizer needs costs a small constant
    # factor on top of the uninstrumented run -- not extra executions
    assert factors["optimal statistics set"] < 3.0
    assert factors["counters (trivial CSSs)"] <= factors["optimal statistics set"] + 0.5
