"""Ablation: the Section 8 space/error trade-off on bucketized histograms.

The main development assumes exact histograms; Section 8.1 points at the
error introduced once histograms are bucketized.  We sweep the bucket
budget for a skewed join and record the relative error of the J1 estimate:
error should vanish at full resolution and grow as buckets shrink, tracing
the memory/accuracy frontier of Section 8.2.
"""

import random

from conftest import write_report

from repro.core.bucketized import join_estimation_error
from repro.core.histogram import Histogram

DOMAIN = 2000
BUDGETS = [4, 16, 64, 256, 1024, DOMAIN]


def _skewed_pair(seed: int):
    rng = random.Random(seed)
    h1 = {v: max(1, int(2000 / (v**0.9))) for v in range(1, DOMAIN + 1)}
    keys = rng.sample(range(1, DOMAIN + 1), DOMAIN // 2)
    h2 = {v: rng.randint(1, 40) for v in keys}
    return Histogram.single("k", h1), Histogram.single("k", h2)


def _sweep():
    h1, h2 = _skewed_pair(11)
    rows = []
    for buckets in BUDGETS:
        exact, estimated, rel = join_estimation_error(h1, h2, buckets)
        rows.append(
            (buckets, f"{exact:.0f}", f"{estimated:.0f}", round(rel, 4))
        )
    return rows


def test_bucketized_error_tradeoff(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_report(
        results_dir,
        "ablation_bucketized",
        "Section 8 trade-off: join estimation error vs histogram buckets",
        ["buckets", "exact", "estimated", "relative error"],
        [list(r) for r in rows],
    )
    errors = [r[3] for r in rows]
    # exact at full resolution
    assert errors[-1] == 0.0
    # the coarsest histogram is clearly worse than the finest ones
    assert errors[0] > errors[-2]
    # error is loosely monotone: the best of the coarse half is never
    # better than the best of the fine half
    assert min(errors[:3]) >= min(errors[3:])
