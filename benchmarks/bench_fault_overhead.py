"""Ablation: what fault tolerance costs when nothing goes wrong.

The retrying scheduler and the fault-injection wrapper sit on the hot
path of every block execution, so they must be essentially free on a
healthy night -- resilience that taxes every run to protect against the
rare bad one would be mis-priced.  This bench runs wf21 (the suite's
largest single-block workload, an 8-way join) three ways:

- **bare**: the seed contract -- no policy, worker exceptions propagate;
- **retry**: a no-op :class:`RetryPolicy` (failure capture armed, retry
  budget available, zero faults fire);
- **retry+faults**: the same plus an injector wrapping every task with a
  fault plan that never matches (the per-attempt bookkeeping runs, no
  fault fires).

Shape to reproduce: the fully armed configuration stays within 5% of the
bare wall time -- the wrapper is one counter bump and a few glob misses
per block attempt, amortized over millions of tuples of real work.
"""

import gc
import json
import time

from conftest import DATA_SCALE, single_process_backends, write_report

from repro.algebra.blocks import analyze
from repro.engine.backend import BackendExecutor
from repro.engine.faults import FaultPlan, FaultSpec
from repro.engine.scheduler import RetryPolicy
from repro.workloads import case

WORKFLOW = 21  # largest single-block workload: 8-way join
REPEATS = 5
MAX_OVERHEAD = 0.05  # the armed-but-idle harness may cost at most 5%

#: a plan whose specs never match any task in the suite -- the injector
#: still walks every spec on every attempt, which is the cost we measure
IDLE_FAULTS = FaultPlan(
    specs=(
        FaultSpec(target="no-such-block-*", kind="transient"),
        FaultSpec(target="no-such-source", kind="permanent"),
        FaultSpec(target="nobody", kind="delay", delay=9.9),
    ),
    seed=1337,
)

CONFIGS = {
    "bare": {},
    "retry": {"retry": RetryPolicy(max_retries=3, block_timeout=None)},
    "retry+faults": {
        "retry": RetryPolicy(max_retries=3, block_timeout=None),
        "faults": IDLE_FAULTS,
    },
}


def _best_wall(analysis, backend, sources, run_kwargs):
    executor = BackendExecutor(analysis, backend)
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()  # collection pauses otherwise dominate run-to-run noise
    try:
        for _ in range(REPEATS):
            gc.collect()
            t0 = time.perf_counter()
            run = executor.run(sources, **run_kwargs)
            best = min(best, time.perf_counter() - t0)
            assert not run.failures  # nothing may actually fire
    finally:
        if was_enabled:
            gc.enable()
    return best


def _measure():
    wfcase = case(WORKFLOW)
    analysis = analyze(wfcase.build())
    sources = wfcase.tables(scale=max(DATA_SCALE * 10, 3.0), seed=7)
    n_rows = sum(t.num_rows for t in sources.values())
    rows, records = [], []
    for backend in single_process_backends():
        walls = {
            name: _best_wall(analysis, backend, sources, kwargs)
            for name, kwargs in CONFIGS.items()
        }
        for name, wall in walls.items():
            overhead = wall / walls["bare"] - 1.0
            rows.append(
                [
                    f"wf{WORKFLOW}",
                    backend,
                    name,
                    round(wall * 1e3, 1),
                    f"{overhead * 100:+.1f}%",
                ]
            )
            records.append(
                {
                    "workflow": WORKFLOW,
                    "source_rows": n_rows,
                    "backend": backend,
                    "config": name,
                    "wall_s": wall,
                    "overhead_vs_bare": overhead,
                }
            )
    return rows, records


def test_fault_harness_overhead(benchmark, results_dir):
    rows, records = benchmark.pedantic(_measure, rounds=1, iterations=1)
    write_report(
        results_dir,
        "fault_overhead",
        f"Fault-tolerance overhead on a healthy run (wf{WORKFLOW})",
        ["workload", "backend", "config", "best wall ms", "vs bare"],
        rows,
    )
    (results_dir / "fault_overhead.json").write_text(
        json.dumps(records, indent=2) + "\n"
    )

    # the armed harness must be within MAX_OVERHEAD of the bare executor
    # on every backend (min-of-REPEATS walls filter scheduler noise)
    for record in records:
        assert record["overhead_vs_bare"] <= MAX_OVERHEAD, record
