"""Figure 10: time taken for statistics identification.

Per workflow: CSS generation time (with union-division) and solver time for
the optimal-statistics selection.  Paper's claim: identification is an
offline process and stays fast; union-division adds no meaningful overhead.

Our CSS space is generated exhaustively (joint histograms of any width), so
the hardest MILPs (workflow 21's 8-way join) can exceed the paper's 100 ms;
the solver is capped at ``REPRO_ILP_TIME_LIMIT`` seconds and reports its
incumbent -- see EXPERIMENTS.md for the discussion.
"""

from conftest import ILP_TIME_LIMIT, write_report

from repro.experiments import SuiteContext, fig10_rows


def test_fig10_identification_time(benchmark, workflow_analyses, results_dir):
    context = SuiteContext(
        [c for c, _w, _a in workflow_analyses],
        [w for _c, w, _a in workflow_analyses],
        [a for _c, _w, a in workflow_analyses],
    )
    header, rows = benchmark.pedantic(
        fig10_rows, args=(context,), kwargs={"time_limit": ILP_TIME_LIMIT},
        rounds=1, iterations=1,
    )
    write_report(
        results_dir,
        "fig10_identification_time",
        "Figure 10: statistics-identification time (ms)",
        header,
        rows,
    )
    gen_times = [r[2] for r in rows]
    # CSS generation itself is fast for every workflow (paper: ~ms range)
    assert max(gen_times) < 2000
    # union-division generation overhead stays small (paper's observation);
    # compare totals to dodge per-run noise on sub-millisecond flows
    assert sum(r[2] for r in rows) < 5 * sum(r[1] for r in rows) + 100
    # the bulk of the suite solves to optimality quickly
    optimal = [r for r in rows if r[4] == "ilp"]
    assert len(optimal) >= 25
