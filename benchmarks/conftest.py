"""Shared fixtures and reporting helpers for the experiment benches.

Every bench regenerates one table or figure from the paper's Section 7 (or
an ablation motivated by it), prints the series, and writes a markdown
artifact under ``benchmarks/results/`` so the numbers survive the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.algebra.blocks import analyze
from repro.workloads import suite

RESULTS_DIR = Path(__file__).parent / "results"

#: the ILP gets this long per workflow before reporting its incumbent
ILP_TIME_LIMIT = float(os.environ.get("REPRO_ILP_TIME_LIMIT", "15"))

#: scale factor for benches that execute data (kept small for CI boxes)
DATA_SCALE = float(os.environ.get("REPRO_DATA_SCALE", "0.3"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def workflow_cases():
    return suite()


@pytest.fixture(scope="session")
def workflow_analyses(workflow_cases):
    """(case, workflow, analysis) for all 30 suite members."""
    out = []
    for case in workflow_cases:
        workflow = case.build()
        out.append((case, workflow, analyze(workflow)))
    return out


def single_process_backends() -> list[str]:
    """The in-process execution engines the generic ablations compare.

    The multiprocess backend is deliberately excluded: it forks a worker
    pool per configuration (skewing in-process overhead measurements) and
    has its own dedicated scaling bench, ``bench_dist_throughput``.
    """
    from repro.engine.backend import available_backends

    return [b for b in available_backends() if b != "multiprocess"]


def write_report(results_dir: Path, name: str, title: str,
                 header: list[str], rows: list[list]) -> str:
    """Render a markdown table, print it, and persist it."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    lines = [f"# {title}", ""]
    lines.append("| " + " | ".join(str(h).ljust(w) for h, w in zip(header, widths)) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(str(v).ljust(w) for v, w in zip(row, widths)) + " |"
        )
    text = "\n".join(lines)
    (results_dir / f"{name}.md").write_text(text + "\n")
    print("\n" + text)
    return text
