"""Catalog service: served reuse, client latency, WAL replay budgets.

The statistics server (``repro serve``) must make fleet-wide reuse as
cheap as the in-process catalog while adding crash safety.  Three budgets
pin that down:

- a second nightly pass over the suite *through the server* taps zero
  statistics (everything is served back at zero observation cost) while
  choosing exactly the cold pass's plans;
- the client's p50 round-trip on a unix socket stays under 5 ms, so
  looking statistics up over the wire is never the bottleneck;
- replaying a 10k-entry WAL on startup takes under 2 s, so crash
  recovery is a restart, not an incident;
- a warm standby tailing a 10k-record WAL stream holds a p50 lag under
  100 records, and failing a writer over to it (redirect + promotion +
  the retried write) completes in under 2 s, so losing the primary is
  a blip, not an outage.
"""

import json
import statistics
import time

from conftest import write_report

from repro.framework.pipeline import StatisticsPipeline
from repro.serve.client import CatalogClient
from repro.serve.server import ServerThread
from repro.serve.service import CatalogService
from repro.serve.wal import WriteAheadLog
from repro.workloads import suite

SCALE = 0.08
SEED = 5
P50_BUDGET_MS = 5.0
REPLAY_ENTRIES = 10_000
REPLAY_BUDGET_S = 2.0
STREAM_RECORDS = 10_000
LAG_P50_BUDGET_RECORDS = 100
FAILOVER_BUDGET_S = 2.0


def _client(url):
    return CatalogClient(url, timeout=5.0, base_delay=0.0, max_delay=0.0)


def _nightly_pass(url, run_id):
    tapped = reused = 0
    plans = {}
    for wfcase in suite():
        pipeline = StatisticsPipeline(wfcase.build(), solver="greedy")
        client = _client(url)
        report = pipeline.run_once(
            wfcase.tables(scale=SCALE, seed=SEED),
            stats_catalog=client,
            run_id=run_id,
        )
        assert not report.catalog_degraded, "server vanished mid-bench"
        client.close()
        tapped += len(report.tapped)
        reused += report.catalog_hits
        plans[wfcase.number] = {
            name: repr(tree) for name, tree in report.chosen_trees.items()
        }
    return {"tapped": tapped, "reused": reused, "plans": plans}


def _round_trip_p50_ms(url, samples=300):
    client = _client(url)
    client.healthz()  # connection warm-up outside the timed loop
    laps = []
    for _ in range(samples):
        start = time.perf_counter()
        client.healthz()
        laps.append((time.perf_counter() - start) * 1000.0)
    client.close()
    return statistics.median(laps)


def _wal_replay_seconds(tmp_path):
    path = tmp_path / "big-catalog.json"
    svc = CatalogService(path, fsync=False)
    docs = [
        {
            "key": f"k{i}",
            "se_key": f"se:{i}",
            "stat": {"kind": "card"},
            "value": float(i),
            "repr": f"T[{i}]",
            "workflow": "wf",
            "run_id": "r",
            "observed_at": 1_000_000.0,
        }
        for i in range(REPLAY_ENTRIES)
    ]
    for off in range(0, REPLAY_ENTRIES, 100):
        svc.put_entries(docs[off:off + 100])
    svc.wal.close()  # crash: no snapshot -- the WAL holds everything

    start = time.perf_counter()
    revived = CatalogService(path, fsync=False)
    elapsed = time.perf_counter() - start
    assert len(revived) == REPLAY_ENTRIES
    revived.wal.close()
    return elapsed


def test_catalog_service_budgets(results_dir, tmp_path):
    url = f"unix://{tmp_path / 'catalog.sock'}"
    with ServerThread(
        url, tmp_path / "catalog.json", fsync=False
    ) as thread:
        cold = _nightly_pass(thread.url, "night1")
        warm = _nightly_pass(thread.url, "night2")
        p50 = _round_trip_p50_ms(thread.url)
    replay_s = _wal_replay_seconds(tmp_path)

    rows = [
        ["served cold pass", f"{cold['tapped']} tapped",
         f"{cold['reused']} reused", ""],
        ["served warm pass", f"{warm['tapped']} tapped",
         f"{warm['reused']} reused", "budget: 0 taps"],
        ["client round-trip p50", f"{p50:.2f} ms", "unix socket",
         f"budget: < {P50_BUDGET_MS:g} ms"],
        [f"WAL replay ({REPLAY_ENTRIES} entries)", f"{replay_s:.2f} s", "",
         f"budget: < {REPLAY_BUDGET_S:g} s"],
    ]
    write_report(
        results_dir,
        "catalog_service",
        "Catalog service: served reuse, round-trip latency, WAL replay",
        ["measure", "value", "detail", "budget"],
        rows,
    )
    (results_dir / "catalog_service.json").write_text(
        json.dumps(
            {
                "scale": SCALE,
                "seed": SEED,
                "cold_tapped": cold["tapped"],
                "cold_reused": cold["reused"],
                "warm_tapped": warm["tapped"],
                "warm_reused": warm["reused"],
                "plans_identical": cold["plans"] == warm["plans"],
                "round_trip_p50_ms": p50,
                "wal_replay_entries": REPLAY_ENTRIES,
                "wal_replay_seconds": replay_s,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert cold["tapped"] > 0
    assert warm["tapped"] == 0, (
        f"warm served pass tapped {warm['tapped']} of {cold['tapped']}"
    )
    assert cold["plans"] == warm["plans"], (
        "served reuse must not change any chosen plan"
    )
    assert p50 < P50_BUDGET_MS, f"p50 round-trip {p50:.2f} ms over budget"
    assert replay_s < REPLAY_BUDGET_S, (
        f"WAL replay took {replay_s:.2f} s for {REPLAY_ENTRIES} entries"
    )


def _entry(i):
    return {
        "key": f"r{i}",
        "se_key": f"se:r{i}",
        "stat": {"kind": "card"},
        "value": float(i),
        "repr": f"T[r{i}]",
        "workflow": "wf",
        "run_id": "r",
        "observed_at": 1_000_000.0,
    }


def test_replication_and_failover_budgets(results_dir, tmp_path):
    """p50 standby lag on a 10k stream, and writer failover wall time."""
    from repro.serve.replication import ReplicationTailer

    url = f"unix://{tmp_path / 'primary.sock'}"
    with ServerThread(
        url, tmp_path / "primary.json", fsync=False,
        snapshot_every=10**9,  # keep the stream tail-based for the burst
    ) as thread:
        primary = thread.server.service
        standby = CatalogService(
            tmp_path / "standby.json",
            role="standby",
            primary_url=url,
            fsync=False,
        )
        tailer = ReplicationTailer(standby, url, poll_interval=0.005)
        tailer.start()

        # a 10k-record write burst (batched like a nightly reconcile),
        # sampling the standby's lag as the stream drains
        lags = []
        for off in range(0, STREAM_RECORDS, 50):
            for i in range(off, off + 50):
                primary.put_entries([_entry(i)])
            lags.append(max(0, primary.wal.last_seq - standby.wal.last_seq))
            time.sleep(0.004)
        assert tailer.wait_caught_up(primary.wal.last_seq, timeout=30.0), (
            f"standby stuck at {standby.wal.last_seq}/{primary.wal.last_seq}"
        )
        lag_p50 = statistics.median(lags)
        assert len(standby) == len(primary)
        tailer.stop()

        # failover: SIGKILL the primary; a writer with both endpoints
        # must redirect, promote the standby and land its write
        s_url = f"unix://{tmp_path / 'standby.sock'}"
        with ServerThread(
            s_url, tmp_path / "standby2.json", fsync=False,
            replicate_from=url, poll_interval=0.01,
        ) as s_thread:
            s_thread.server.tailer.wait_caught_up(
                primary.wal.last_seq, timeout=30.0
            )
            thread.kill()
            client = CatalogClient(
                f"{url},{s_url}",
                timeout=2.0, max_retries=0, base_delay=0.0, max_delay=0.0,
            )
            from repro.algebra.expressions import SubExpression
            from repro.core.statistics import Statistic

            start = time.perf_counter()
            client.record(
                "failover-probe", "se:failover",
                Statistic.card(SubExpression.of("R")), 1.0,
                workflow="wf", run_id="r",
            )
            client.save()
            failover_s = time.perf_counter() - start
            assert not client.degraded
            assert client.failovers >= 1
            assert s_thread.server.service.role == "primary"
            client.close()

    rows = [
        [f"standby lag p50 ({STREAM_RECORDS} records)",
         f"{lag_p50:.0f} records", f"max {max(lags):.0f}",
         f"budget: < {LAG_P50_BUDGET_RECORDS} records"],
        ["writer failover", f"{failover_s * 1000.0:.0f} ms",
         "redirect + promote + retried write",
         f"budget: < {FAILOVER_BUDGET_S:g} s"],
    ]
    write_report(
        results_dir,
        "catalog_replication",
        "Catalog replication: standby lag and writer failover",
        ["measure", "value", "detail", "budget"],
        rows,
    )
    (results_dir / "catalog_replication.json").write_text(
        json.dumps(
            {
                "stream_records": STREAM_RECORDS,
                "lag_p50_records": lag_p50,
                "lag_max_records": max(lags),
                "failover_seconds": failover_s,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert lag_p50 < LAG_P50_BUDGET_RECORDS, (
        f"standby lag p50 {lag_p50:.0f} records over budget"
    )
    assert failover_s < FAILOVER_BUDGET_S, (
        f"failover took {failover_s:.2f} s"
    )
