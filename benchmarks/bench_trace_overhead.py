"""Ablation: what observability costs when it is switched off (and on).

Tracing guards sit on the hottest path in the repository -- one branch
per materialized plan point, per block attempt, per scheduled task -- so
the zero-cost-when-disabled contract is a measured number, not a design
note.  This bench runs wf21 (the suite's largest single-block workload,
an 8-way join) three ways on every backend:

- **bare**: the seed contract -- ``tracer=None``, the hot path pays one
  attribute load and branch per point;
- **disabled**: a :class:`NullTracer` threaded all the way through (the
  belt-and-braces path for callers that skip the pipeline's
  normalization) -- ``enabled`` is False, every guard short-circuits;
- **traced**: a full :class:`Tracer` recording a span per task and an
  operator point per plan point.

Shape to reproduce: *disabled* stays within 2% of *bare* wall time; the
full tracer's cost is reported alongside (it is bookkeeping per plan
point, amortized over the tuples each point materializes, so it stays
small too -- but only the disabled budget is a contract).
"""

import gc
import json
import time

from conftest import DATA_SCALE, single_process_backends, write_report

from repro.algebra.blocks import analyze
from repro.engine.backend import BackendExecutor
from repro.obs.trace import NULL_TRACER, Tracer
from repro.workloads import case

WORKFLOW = 21  # largest single-block workload: 8-way join
REPEATS = 7
MAX_DISABLED_OVERHEAD = 0.02  # the switched-off tracer may cost at most 2%

CONFIGS = {
    "bare": lambda: {},
    "disabled": lambda: {"tracer": NULL_TRACER},
    "traced": lambda: {"tracer": Tracer()},
}


def _all_walls(analysis, backend, sources):
    """Every repeat's wall per config, interleaved round-robin.

    Running configs back-to-back within each repeat (instead of all
    repeats of one config, then the next) spreads cache/frequency drift
    evenly, so the bare-vs-disabled delta measures the guards, not the
    machine warming up.
    """
    executor = BackendExecutor(analysis, backend)
    walls = {name: [] for name in CONFIGS}
    was_enabled = gc.isenabled()
    gc.disable()  # collection pauses otherwise dominate run-to-run noise
    try:
        for _ in range(REPEATS):
            for name, make_kwargs in CONFIGS.items():
                gc.collect()
                kwargs = make_kwargs()  # fresh tracer per repeat
                t0 = time.perf_counter()
                run = executor.run(sources, **kwargs)
                walls[name].append(time.perf_counter() - t0)
                assert not run.failures
    finally:
        if was_enabled:
            gc.enable()
    return walls


def _measure():
    wfcase = case(WORKFLOW)
    analysis = analyze(wfcase.build())
    sources = wfcase.tables(scale=max(DATA_SCALE * 10, 3.0), seed=7)
    n_rows = sum(t.num_rows for t in sources.values())
    rows, records = [], []
    for backend in single_process_backends():
        walls = _all_walls(analysis, backend, sources)
        bare = min(walls["bare"])
        # bare's own run-to-run spread: the resolution limit of this box.
        # an overhead smaller than it is indistinguishable from noise.
        noise = sorted(walls["bare"])[len(walls["bare"]) // 2] / bare - 1.0
        for name, samples in walls.items():
            wall = min(samples)
            overhead = wall / bare - 1.0
            rows.append(
                [
                    f"wf{WORKFLOW}",
                    backend,
                    name,
                    round(wall * 1e3, 1),
                    f"{overhead * 100:+.1f}%",
                ]
            )
            records.append(
                {
                    "workflow": WORKFLOW,
                    "source_rows": n_rows,
                    "backend": backend,
                    "config": name,
                    "wall_s": wall,
                    "overhead_vs_bare": overhead,
                    "noise_floor": noise,
                }
            )
    return rows, records


def test_trace_overhead(benchmark, results_dir):
    rows, records = benchmark.pedantic(_measure, rounds=1, iterations=1)
    write_report(
        results_dir,
        "trace_overhead",
        f"Tracing overhead on wf{WORKFLOW} (disabled must be free)",
        ["workload", "backend", "config", "best wall ms", "vs bare"],
        rows,
    )
    (results_dir / "trace_overhead.json").write_text(
        json.dumps(records, indent=2) + "\n"
    )

    # the switched-off tracer must be within MAX_DISABLED_OVERHEAD of the
    # bare executor on every backend.  When the box's own run-to-run
    # spread (bare median vs bare min) exceeds the budget, the bench
    # cannot resolve 2% -- allow up to that measured noise floor instead
    # of failing on machine jitter.
    for record in records:
        if record["config"] == "disabled":
            budget = max(MAX_DISABLED_OVERHEAD, record["noise_floor"])
            assert record["overhead_vs_bare"] <= budget, record
