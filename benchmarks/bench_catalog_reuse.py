"""Catalog reuse across the fleet: hit rate and observation savings.

The statistics catalog (``repro.catalog``) promises that the second
nightly pass over the suite observes dramatically fewer statistics than
the first — shared sub-expressions are observed once and reused
everywhere — while choosing exactly the plans a cold pass would.  This
bench runs the full 30-workflow suite for two "nights" against one shared
catalog and reports, per night:

- how many statistics were tapped (instrumented fresh) vs reused;
- the observation cost actually paid vs the standalone cost;
- the catalog hit rate.

Shape to reproduce: night 2 taps at least 30% fewer statistics than
night 1 (the issue's acceptance floor; with unchanged data the saving is
total), every plan is identical across nights, and within night 1 the
later workflows already reuse what earlier ones observed.
"""

import json

from conftest import write_report

from repro.catalog import StatisticsCatalog
from repro.framework.pipeline import StatisticsPipeline
from repro.workloads import suite

SCALE = 0.08
SEED = 5
MIN_SAVING = 0.30  # acceptance floor: warm pass observes >= 30% fewer


def _nightly_pass(catalog, run_id):
    tapped = reused = 0
    paid_cost = standalone_cost = 0.0
    plans = {}
    for wfcase in suite():
        pipeline = StatisticsPipeline(wfcase.build(), solver="greedy")
        # what this workflow would pay planning alone, without the catalog
        # (solved before the run so both selections share one cost model)
        standalone_cost += pipeline.select_statistics().total_cost
        report = pipeline.run_once(
            wfcase.tables(scale=SCALE, seed=SEED),
            stats_catalog=catalog,
            run_id=run_id,
        )
        tapped += len(report.tapped)
        reused += report.catalog_hits
        problem = report.selection.problem
        paid_cost += sum(
            problem.costs[problem.index[stat]] for stat in report.tapped
        )
        plans[wfcase.number] = {
            name: repr(tree) for name, tree in report.chosen_trees.items()
        }
    return {
        "tapped": tapped,
        "reused": reused,
        "paid_cost": paid_cost,
        "standalone_cost": standalone_cost,
        "hit_rate": reused / max(tapped + reused, 1),
        "plans": plans,
    }


def test_catalog_reuse_savings(results_dir, tmp_path):
    catalog = StatisticsCatalog(tmp_path / "fleet-catalog.json")
    night1 = _nightly_pass(catalog, "night1")
    night2 = _nightly_pass(catalog, "night2")

    saving = 1.0 - night2["tapped"] / max(night1["tapped"], 1)
    rows = []
    for label, night in (("night 1 (cold)", night1), ("night 2 (warm)", night2)):
        rows.append([
            label,
            night["tapped"],
            night["reused"],
            f"{night['hit_rate']:.0%}",
            f"{night['paid_cost']:g}",
            f"{night['standalone_cost']:g}",
        ])
    rows.append([
        "warm saving", f"{saving:.0%} fewer taps", "", "", "", "",
    ])
    write_report(
        results_dir,
        "catalog_reuse",
        "Catalog reuse across the 30-workflow suite (two nightly passes)",
        ["night", "tapped", "reused", "hit rate", "paid cost",
         "standalone cost"],
        rows,
    )
    (results_dir / "catalog_reuse.json").write_text(
        json.dumps(
            {
                "suite_size": len(suite()),
                "scale": SCALE,
                "seed": SEED,
                "night1": {k: v for k, v in night1.items() if k != "plans"},
                "night2": {k: v for k, v in night2.items() if k != "plans"},
                "warm_saving": saving,
                "plans_identical": night1["plans"] == night2["plans"],
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert night1["tapped"] > 0
    assert saving >= MIN_SAVING, (
        f"warm pass tapped {night2['tapped']} of {night1['tapped']}"
    )
    assert night1["plans"] == night2["plans"], (
        "catalog reuse must not change any chosen plan"
    )
    # sharing already pays off within the first night
    assert night1["reused"] > 0
