"""Ablation: the Section 8.2 memory/error frontier.

Sweep the allowed estimation error and record the memory the error-aware
selector needs: with zero allowed error the exact optimum is required; as
the budget grows, histograms coarsen and memory falls toward the
counters-only floor.
"""

from conftest import write_report

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.error_aware import select_with_error_budget
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.workloads import case

BUDGETS = (0.0, 0.05, 0.1, 0.2, 0.4, 0.8)


def _frontier():
    wfcase = case(16)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis, GeneratorOptions(fk_rules=False))
    cost_model = CostModel(workflow.catalog)
    problem = build_problem(catalog, cost_model)
    base = solve_ilp(problem)
    rows = []
    for budget in BUDGETS:
        result = select_with_error_budget(
            catalog, problem, base, cost_model, error_budget=budget
        )
        rows.append(
            (
                budget,
                f"{result.total_memory:.0f}",
                round(result.worst_required_error(catalog), 3),
            )
        )
    return base.total_cost, rows


def test_error_memory_frontier(benchmark, results_dir):
    exact_cost, rows = benchmark.pedantic(_frontier, rounds=1, iterations=1)
    write_report(
        results_dir,
        "ablation_error_aware",
        f"Section 8.2 frontier (exact optimum {exact_cost:.0f} units)",
        ["allowed error", "memory units", "worst projected error"],
        [list(r) for r in rows],
    )
    memories = [float(r[1]) for r in rows]
    # zero budget == exact memory; memory falls as the budget grows
    assert memories[0] == exact_cost
    assert memories == sorted(memories, reverse=True)
    assert memories[-1] < memories[0]
    # projected error always within budget
    assert all(r[2] <= r[0] + 1e-9 for r in rows)
