"""Ablation: the plan-compilation layer's fused-kernel throughput.

The compile layer lowers each block's algebra DAG to a physical-operator
IR, fuses select/project/transform chains into whole-column kernels, and
caches the result under the workflow's structural signature.  This bench
measures the three claims that justify it:

- **fused vs interpreted**: source rows/second per backend on wf21 (the
  8-way-join block) with compilation off, cold (compile included in the
  wall), and warm (plan cache hit).  Shape to reproduce: the streaming
  engine -- which pays per-tuple dict materialization in its interpreter
  -- gains >= 5x from batched fused kernels; the vectorized engine,
  already bulk, still gains >= 1.5x.
- **amortization**: the one-time compile cost against the per-run saving,
  i.e. how many runs until compilation has paid for itself (for every
  backend here: less than one).
- **cache**: the warm run reports zero misses -- recurring loads (the
  paper's premise: the same workflow re-runs nightly) never recompile.

Alongside the markdown artifact this bench emits
``results/plan_compile.json`` for downstream tooling.
"""

import gc
import json
import time

from conftest import single_process_backends, write_report

from repro.algebra.blocks import analyze
from repro.engine.backend import BackendExecutor
from repro.engine.compile import compile_blocks
from repro.workloads import case

WORKFLOW = 21  # largest single-block workload: 8-way join
SCALE = 4.0
REPEATS = 5  # best-of-N: the speedup floors must hold under box noise


def _best_wall(fn):
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPEATS):
            gc.collect()
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return best


def _compile_time(analysis, backend_name):
    """Median one-shot compile wall for the backend's profile."""
    backend = BackendExecutor(analysis, backend_name).backend
    profile = backend.compiled_profile()
    walls = []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        compile_blocks(analysis, backend=backend_name, profile=profile)
        walls.append(time.perf_counter() - t0)
    return sorted(walls)[len(walls) // 2]


def _measure():
    wfcase = case(WORKFLOW)
    analysis = analyze(wfcase.build())
    sources = wfcase.tables(scale=SCALE, seed=7)
    n_rows = sum(t.num_rows for t in sources.values())

    rows = []
    records = []
    for backend in single_process_backends():
        interp = _best_wall(
            lambda: BackendExecutor(
                analysis, backend, compile_plans=False
            ).run(sources)
        )
        # cold: a fresh executor per run, so every wall pays compilation
        cold = _best_wall(
            lambda: BackendExecutor(
                analysis, backend, compile_plans=True
            ).run(sources)
        )
        # warm: one executor, cache primed before timing
        executor = BackendExecutor(analysis, backend, compile_plans=True)
        executor.run(sources)
        warm = _best_wall(lambda: executor.run(sources))
        assert executor.plan_cache.misses == len(analysis.blocks)

        compile_s = _compile_time(analysis, backend)
        saving = interp - warm
        amortize = compile_s / saving if saving > 0 else float("inf")
        speedup = interp / warm
        rows.append(
            [
                backend,
                round(interp * 1e3, 1),
                round(cold * 1e3, 1),
                round(warm * 1e3, 1),
                round(n_rows / interp),
                round(n_rows / warm),
                round(speedup, 2),
                round(compile_s * 1e3, 2),
                round(amortize, 3),
            ]
        )
        records.append(
            {
                "workflow": WORKFLOW,
                "scale": SCALE,
                "source_rows": n_rows,
                "backend": backend,
                "interpreted_wall_s": interp,
                "compiled_cold_wall_s": cold,
                "compiled_warm_wall_s": warm,
                "interpreted_rows_per_s": n_rows / interp,
                "compiled_rows_per_s": n_rows / warm,
                "speedup": speedup,
                "compile_s": compile_s,
                "runs_to_amortize": amortize,
            }
        )
    return rows, records


def test_plan_compile(benchmark, results_dir):
    rows, records = benchmark.pedantic(_measure, rounds=1, iterations=1)
    write_report(
        results_dir,
        "plan_compile",
        f"Plan compilation: fused vs interpreted (wf{WORKFLOW} @ {SCALE:g})",
        ["backend", "interp ms", "cold ms", "warm ms", "interp rows/s",
         "fused rows/s", "speedup", "compile ms", "runs to amortize"],
        rows,
    )
    (results_dir / "plan_compile.json").write_text(
        json.dumps({"plan_compile": records}, indent=2) + "\n"
    )

    by_backend = {r["backend"]: r for r in records}
    # the issue's acceptance floors: batched fused kernels lift the
    # per-tuple streaming engine >= 5x; the already-bulk vectorized
    # kernels still gain >= 1.5x from fusion + gather engines
    assert by_backend["streaming"]["speedup"] >= 5.0, by_backend["streaming"]
    assert by_backend["vectorized"]["speedup"] >= 1.5, by_backend["vectorized"]
    # compilation itself is cheap: it pays for itself within a single run
    for r in records:
        assert r["runs_to_amortize"] < 1.0, r
        # and the cold run (compile included) never loses to the interpreter
        assert r["compiled_cold_wall_s"] <= r["interpreted_wall_s"], r
