"""Ablation: repeated execution under data drift (the Section 1 premise).

An ETL flow runs nightly while its data drifts.  Three policies compete:

- **static-initial**: always execute the designer's plan;
- **static-first**: optimize once after the first run, never again;
- **adaptive**: the paper's cycle -- re-learn statistics and re-optimize on
  every run.

Executed-plan cost (C_out from observed sizes) is accumulated over the
horizon; adaptive must never lose to the static policies.
"""

import random

from conftest import write_report

from repro.algebra.blocks import analyze
from repro.engine.executor import Executor
from repro.engine.table import Table
from repro.estimation.costmodel import PlanCostModel
from repro.framework.pipeline import StatisticsPipeline

from repro.algebra.operators import Join, Source, Target, Workflow
from repro.algebra.schema import Catalog

N_EVENTS = 2000
USERS, DEVICES = 300, 250


def _workflow():
    catalog = Catalog()
    catalog.add_relation(
        "Events", {"user_id": USERS, "device_id": DEVICES, "eid": 8000}
    )
    catalog.add_relation("Users", {"user_id": USERS, "uname": 500})
    catalog.add_relation("Devices", {"device_id": DEVICES, "model": 40})
    events, users, devices = (
        Source(catalog, n) for n in ("Events", "Users", "Devices")
    )
    flow = Join(Join(events, users, "user_id"), devices, "device_id")
    return Workflow("drift", catalog, [Target(flow, "out")])


def _night(user_cov: float, device_cov: float, seed: int):
    rng = random.Random(seed)
    events = Table(
        {
            "user_id": [rng.randint(1, USERS) for _ in range(N_EVENTS)],
            "device_id": [rng.randint(1, DEVICES) for _ in range(N_EVENTS)],
            "eid": list(range(N_EVENTS)),
        }
    )
    uk = rng.sample(range(1, USERS + 1), int(USERS * user_cov))
    dk = rng.sample(range(1, DEVICES + 1), int(DEVICES * device_cov))
    return {
        "Events": events,
        "Users": Table({"user_id": uk, "uname": [3 * u for u in uk]}),
        "Devices": Table({"device_id": dk, "model": [d % 40 + 1 for d in dk]}),
    }


DRIFT = [(0.10, 0.95), (0.30, 0.85), (0.55, 0.60), (0.85, 0.30), (0.98, 0.10)]


def _executed_cost(analysis, sources, trees):
    run = Executor(analysis).run(sources, trees=trees)
    model = PlanCostModel(dict(run.se_sizes))
    total = 0.0
    for block in analysis.blocks:
        total += model.tree_cost(trees.get(block.name, block.initial_tree))
    return total


def _drift_sweep():
    workflow = _workflow()
    analysis = analyze(workflow)

    # adaptive: the paper's repeated cycle
    pipeline = StatisticsPipeline(_workflow())
    adaptive_total = 0.0
    trees = None
    first_choice = None
    for i, (uc, dc) in enumerate(DRIFT):
        sources = _night(uc, dc, seed=i)
        report = pipeline.run_once(sources, trees=trees)
        executed = trees or {
            b.name: b.initial_tree for b in report.analysis.blocks
        }
        adaptive_total += _executed_cost(analysis, sources, executed)
        trees = report.chosen_trees
        if first_choice is None:
            first_choice = dict(trees)

    # static policies replay the same nights
    static_initial = 0.0
    static_first = 0.0
    for i, (uc, dc) in enumerate(DRIFT):
        sources = _night(uc, dc, seed=i)
        static_initial += _executed_cost(analysis, sources, {})
        static_first += _executed_cost(analysis, sources, first_choice)
    return [
        ("static-initial", round(static_initial)),
        ("static-first", round(static_first)),
        ("adaptive", round(adaptive_total)),
    ]


def test_session_drift(benchmark, results_dir):
    rows = benchmark.pedantic(_drift_sweep, rounds=1, iterations=1)
    write_report(
        results_dir,
        "session_drift",
        "Repeated execution under drift: total executed plan cost "
        "(5 nights)",
        ["policy", "total cost"],
        [list(r) for r in rows],
    )
    costs = dict(rows)
    # adaptive never loses to either static policy (first run is shared)
    assert costs["adaptive"] <= costs["static-initial"] * 1.01
    assert costs["adaptive"] <= costs["static-first"] * 1.01
    # and drift makes at least one static policy strictly worse
    assert costs["adaptive"] < max(costs["static-initial"], costs["static-first"])
