"""Accuracy ablation: learned statistics vs the independence assumption.

Not a numbered figure, but the paper's motivating claim (Sections 1 and 3):
without learned statistics an optimizer falls back to uniformity +
independence, which goes badly wrong on skewed data.  We measure, over a
sample of suite workflows on Zipfian data:

- the learned-statistics estimator: exact on every SE (q-error 1.0);
- the independence baseline: its worst q-error across join SEs.
"""

from conftest import DATA_SCALE, write_report

from repro.algebra.blocks import analyze
from repro.baselines.independence import IndependenceEstimator, profile_inputs
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.engine.executor import Executor
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.engine.instrumentation import TapSet
from repro.estimation.estimator import CardinalityEstimator
from repro.workloads import case

SAMPLE = [9, 11, 12, 16, 20, 27]


def _q_error(estimate: float, actual: float) -> float:
    lo, hi = sorted((max(estimate, 0.5), max(actual, 0.5)))
    return hi / lo


def _accuracy_sweep():
    rows = []
    for number in SAMPLE:
        wfcase = case(number)
        workflow = wfcase.build()
        analysis = analyze(workflow)
        catalog = generate_css(analysis)
        selection = solve_ilp(
            build_problem(catalog, CostModel(workflow.catalog)), time_limit=30
        )
        sources = wfcase.tables(scale=DATA_SCALE, seed=13)
        taps = TapSet(selection.observed)
        run = Executor(analysis).run(sources, taps=taps)
        learned = CardinalityEstimator(catalog, run.observations)
        indep = IndependenceEstimator(analysis, profile_inputs(analysis, run.env))
        truth = ground_truth_cardinalities(analysis, sources)

        q_learned = 1.0
        q_indep = 1.0
        for block in analysis.blocks:
            for se in block.join_ses():
                actual = truth[se]
                q_learned = max(q_learned, _q_error(learned.cardinality(se), actual))
                q_indep = max(q_indep, _q_error(indep.cardinality(se), actual))
        rows.append((number, round(q_learned, 4), round(q_indep, 2)))
    return rows


def test_accuracy_vs_independence(benchmark, results_dir):
    rows = benchmark.pedantic(_accuracy_sweep, rounds=1, iterations=1)
    write_report(
        results_dir,
        "accuracy_vs_independence",
        "Worst-case q-error across join SEs: learned statistics vs "
        "independence assumption (Zipfian data)",
        ["wf", "learned stats", "independence"],
        [list(r) for r in rows],
    )
    # learned statistics are exact; independence is not
    assert all(q == 1.0 for _wf, q, _qi in rows)
    assert any(qi > 1.5 for _wf, _q, qi in rows)
    assert all(qi >= 1.0 for _wf, _q, qi in rows)
