"""Ablation: execution-backend throughput and parallel-scheduler scaling.

The pluggable :class:`~repro.engine.backend.ExecutionBackend` layer claims
that statistics identification is engine-independent while engines differ
in *cost* (the premise behind the per-backend constants in
``repro.estimation.physical.BACKEND_COST_FACTORS``).  This bench measures
the real constants:

- **throughput**: source rows/second for each backend on wf21, the
  suite's largest single-block workload (8-way join), at increasing data
  scales.  Shape to reproduce: the vectorized kernels beat the seed
  columnar executor by >= 2x on the largest workload; the per-tuple
  streaming engine trails both.
- **scheduler scaling**: wall time of wf25 (three blocks, two of them
  independent) under the parallel block scheduler at 1/2/4 workers.  The
  scheduler overlaps independent blocks on a thread pool; with CPU-bound
  pure-Python kernels under the GIL on a small box the win is bounded, so
  the shape to reproduce is "no slowdown, modest overlap" -- the numbers
  calibrate what a multi-core / GIL-free runtime could recover.

Alongside the markdown artifact this bench emits
``results/backend_throughput.json`` so downstream tooling can consume the
measured factors without scraping tables.
"""

import gc
import json
import time

from conftest import DATA_SCALE, single_process_backends, write_report

from repro.algebra.blocks import analyze
from repro.engine.backend import BackendExecutor
from repro.workloads import case

THROUGHPUT_WORKFLOW = 21  # largest single-block workload: 8-way join
SCHEDULER_WORKFLOW = 25  # multi_target: 3 blocks, 2 independent
SCALES = (1.0, 4.0, 10.0)
WORKER_COUNTS = (1, 2, 4)
REPEATS = 3


def _best_wall(analysis, backend, sources, workers=1, compiled=False):
    # one executor across repeats: the compiled variant's plan cache warms
    # on the first repeat, so "best wall" reports the steady state
    executor = BackendExecutor(
        analysis, backend, workers=workers, compile_plans=compiled
    )
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()  # collection pauses otherwise dominate run-to-run noise
    try:
        for _ in range(REPEATS):
            gc.collect()
            t0 = time.perf_counter()
            executor.run(sources)
            best = min(best, time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return best


def _throughput():
    wfcase = case(THROUGHPUT_WORKFLOW)
    analysis = analyze(wfcase.build())
    rows = []
    records = []
    for scale in SCALES:
        sources = wfcase.tables(scale=scale, seed=7)
        n_rows = sum(t.num_rows for t in sources.values())
        walls = {
            (b, compiled): _best_wall(analysis, b, sources, compiled=compiled)
            for b in single_process_backends()
            for compiled in (False, True)
        }
        baseline = walls[("columnar", False)]
        for (backend, compiled), wall in walls.items():
            rows.append(
                [
                    f"wf{THROUGHPUT_WORKFLOW}@{scale:g}",
                    n_rows,
                    backend,
                    "yes" if compiled else "no",
                    round(wall * 1e3, 1),
                    round(n_rows / wall),
                    round(baseline / wall, 2),
                ]
            )
            records.append(
                {
                    "workflow": THROUGHPUT_WORKFLOW,
                    "scale": scale,
                    "source_rows": n_rows,
                    "backend": backend,
                    "compiled": compiled,
                    "wall_s": wall,
                    "rows_per_s": n_rows / wall,
                    "speedup_vs_columnar": baseline / wall,
                }
            )
    return rows, records


def _scheduler_scaling():
    wfcase = case(SCHEDULER_WORKFLOW)
    analysis = analyze(wfcase.build())
    # big enough that per-block work dwarfs thread-pool setup: the point
    # is scheduling overhead, and overhead only shows against real work
    sources = wfcase.tables(scale=max(DATA_SCALE * 100, 30.0), seed=7)
    rows = []
    records = []
    serial = None
    for workers in WORKER_COUNTS:
        wall = _best_wall(analysis, "vectorized", sources, workers=workers)
        if serial is None:
            serial = wall
        rows.append(
            [
                f"wf{SCHEDULER_WORKFLOW}",
                "vectorized",
                workers,
                round(wall * 1e3, 1),
                round(serial / wall, 2),
            ]
        )
        records.append(
            {
                "workflow": SCHEDULER_WORKFLOW,
                "backend": "vectorized",
                "workers": workers,
                "wall_s": wall,
                "speedup_vs_serial": serial / wall,
            }
        )
    return rows, records


def test_backend_throughput(benchmark, results_dir):
    (tp_rows, tp_records), (sc_rows, sc_records) = benchmark.pedantic(
        lambda: (_throughput(), _scheduler_scaling()), rounds=1, iterations=1
    )
    write_report(
        results_dir,
        "backend_throughput",
        f"Backend throughput (wf{THROUGHPUT_WORKFLOW}) and scheduler "
        f"scaling (wf{SCHEDULER_WORKFLOW})",
        ["workload", "source rows", "backend", "compiled", "best wall ms",
         "rows/s", "x columnar"],
        tp_rows,
    )
    write_report(
        results_dir,
        "backend_scheduler_scaling",
        f"Parallel block-scheduler scaling (wf{SCHEDULER_WORKFLOW}, "
        "vectorized backend)",
        ["workload", "backend", "workers", "best wall ms", "x serial"],
        sc_rows,
    )
    (results_dir / "backend_throughput.json").write_text(
        json.dumps(
            {"throughput": tp_records, "scheduler_scaling": sc_records},
            indent=2,
        )
        + "\n"
    )

    # the vectorized kernels must beat the seed columnar executor by >= 2x
    # on the largest workload (the whole point of the backend) -- an
    # interpreter-vs-interpreter claim, so scoped to compiled=False
    largest = max(r["scale"] for r in tp_records)
    vec = next(
        r for r in tp_records
        if r["scale"] == largest
        and r["backend"] == "vectorized"
        and not r["compiled"]
    )
    assert vec["speedup_vs_columnar"] >= 2.0, vec
    # streaming pays per-tuple dict overhead: never the fastest engine
    # (within a compilation flag; fused streaming beats interpreted anything)
    for scale in SCALES:
        for compiled in (False,):
            by_backend = {
                r["backend"]: r["rows_per_s"]
                for r in tp_records
                if r["scale"] == scale and r["compiled"] == compiled
            }
            assert by_backend["streaming"] <= by_backend["vectorized"]
    # fused kernels must not lose to the interpreter at the largest scale
    for backend in ("columnar", "streaming", "vectorized"):
        pair = {
            r["compiled"]: r["rows_per_s"]
            for r in tp_records
            if r["scale"] == largest and r["backend"] == backend
        }
        assert pair[True] >= pair[False], backend
    # the parallel scheduler must never make multi-block workflows slower
    # than serial by more than scheduling noise (GIL bounds the upside)
    for r in sc_records:
        assert r["speedup_vs_serial"] > 0.7, r
