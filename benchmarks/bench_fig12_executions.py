"""Figure 12: number of executions to cover all SEs (pay-as-you-go [6]).

Per workflow: the lower bound ``ceil((2^n - (n+2)) / (n-2))`` on the
largest join block, and the length of a concrete re-ordering schedule found
by the coverage search over all 2^n subsets (the paper's semantics-free
setting; its hand-built schedules are the same kind of upper bound).
Shapes to reproduce:

- many workflows need exactly 1 execution (linear flows, or joins split
  across block boundaries);
- workflow 30's 6-way block needs >= 14 (paper found 18; we find 20);
- workflow 21's 8-way block needs >= 41 (paper found > 70; we find 70);
- exploiting join-graph semantics and FK metadata shrinks the schedules
  (the Section 7.3 remark);
- our framework needs one execution everywhere, given enough memory.
"""

from conftest import write_report

from repro.experiments import SuiteContext, fig12_rows


def test_fig12_executions(benchmark, workflow_analyses, results_dir):
    context = SuiteContext(
        [c for c, _w, _a in workflow_analyses],
        [w for _c, w, _a in workflow_analyses],
        [a for _c, _w, a in workflow_analyses],
    )
    header, rows = benchmark.pedantic(
        fig12_rows, args=(context,), rounds=1, iterations=1
    )
    write_report(
        results_dir,
        "fig12_executions",
        "Figure 12: executions needed to cover all SEs "
        "(min formula vs found schedule; ours = 1)",
        header,
        rows,
    )
    by_wf = {r[0]: r for r in rows}
    # the paper's quoted bounds
    assert by_wf[21][1] == 41
    assert by_wf[30][1] == 14
    # semantics-free schedules respect the generic lower bound and, as in
    # the paper, overshoot it on the big joins (paper: wf21 "> 70")
    assert all(r[2] >= r[1] for r in rows)
    assert by_wf[21][2] > 41
    # linear workflows need exactly one execution
    for wf in (1, 2, 3, 4, 5, 6):
        assert by_wf[wf][1] == 1 and by_wf[wf][2] == 1
    # exploiting semantics/metadata only ever shrinks the schedule
    assert all(r[3] <= r[2] and r[4] <= r[3] for r in rows)
    # a good chunk of the suite needs multiple executions under
    # pay-as-you-go -- our framework needs one
    assert sum(1 for r in rows if r[2] > 1) >= 12
