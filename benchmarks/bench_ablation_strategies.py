"""Ablation: cumulative execution cost of the competing strategies.

The paper's framing (Sections 1, 6.1, 7.3): pay-as-you-go style approaches
pay for many re-ordered executions before they can pick the optimum, while
this framework observes everything in one instrumented run.  We charge each
strategy the *executed* plan cost (C_out from actual sizes) over a horizon
of identical nightly loads:

- **static**: always run the designer's initial plan;
- **pay-as-you-go**: run the coverage schedule (trivial CSSs only), then
  the true optimum;
- **explore-exploit**: the XPLUS-style baseline (bounded-regret adaptive
  plan choice on passively observed cardinalities);
- **ours**: run 1 is pre-optimized with the Section 5.4 independence
  bootstrap (schema characteristics only), executed instrumented, and every
  later run uses the exactly-costed optimum.
"""

from conftest import write_report

from repro.algebra.blocks import analyze, with_plans
from repro.algebra.plans import internal_ses
from repro.baselines.explore import ExploreExploitSession
from repro.baselines.payg import workflow_schedule
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.engine.executor import Executor
from repro.engine.instrumentation import TapSet
from repro.estimation.estimator import CardinalityEstimator
from repro.estimation.optimizer import PlanOptimizer
from repro.workloads import case

HORIZON = 12
WORKFLOW = 13  # 5-way star: rich plan space, fast execution


def _executed_cost(analysis, run, trees):
    total = 0.0
    for block in analysis.blocks:
        tree = trees.get(block.name, block.initial_tree)
        total += sum(run.se_sizes.get(se, 0) for se in internal_ses(tree))
    return total


def _strategy_costs():
    wfcase = case(WORKFLOW)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    sources = wfcase.tables(scale=0.25, seed=31)

    # The paper's motivation: a design that has degraded over time.  Make
    # the "designer's" plan the *worst* join order under the current data.
    from repro.engine.ground_truth import ground_truth_cardinalities
    from repro.estimation.costmodel import PlanCostModel

    truth = ground_truth_cardinalities(analysis, sources)
    model = PlanCostModel(dict(truth))
    stale_trees = {}
    for block in analysis.blocks:
        if block.pinned or block.n_way <= 2:
            continue
        trees = block.graph.enumerate_trees(limit=256)
        stale_trees[block.name] = max(trees, key=model.tree_cost)
    analysis = with_plans(analysis, stale_trees)
    executor = Executor(analysis)

    best_trees = {
        name: plan.tree
        for name, plan in PlanOptimizer(analysis, dict(truth)).optimize().items()
    }

    # static
    static = 0.0
    for _ in range(HORIZON):
        run = executor.run(sources)
        static += _executed_cost(analysis, run, {})

    # ours: bootstrap-optimize run 1 from schema characteristics (Section
    # 5.4's coarse approximation), run it instrumented, then the optimum
    from repro.estimation.bootstrap import bootstrap_se_sizes

    cards, dv = wfcase.characteristics(scale=0.25)
    boot_sizes = bootstrap_se_sizes(analysis, cards, dv)
    run1_trees = {
        name: plan.tree
        for name, plan in PlanOptimizer(analysis, boot_sizes).optimize().items()
    }
    run1_analysis = with_plans(analysis, run1_trees)
    catalog = generate_css(run1_analysis)
    selection = solve_ilp(
        build_problem(catalog, CostModel(workflow.catalog)), time_limit=20
    )
    taps = TapSet(selection.observed)
    first = Executor(run1_analysis).run(sources, taps=taps)
    estimator = CardinalityEstimator(catalog, first.observations)
    our_trees = {
        name: plan.tree
        for name, plan in PlanOptimizer(
            run1_analysis, estimator.all_cardinalities()
        ).optimize().items()
    }
    ours = _executed_cost(run1_analysis, first, {})
    for _ in range(HORIZON - 1):
        run = executor.run(sources, trees=our_trees)
        ours += _executed_cost(analysis, run, our_trees)

    # pay-as-you-go: coverage schedule first, optimum afterwards
    schedules = workflow_schedule(analysis)
    coverage_runs = max(s.executions for s in schedules.values())
    payg = 0.0
    executions = 0
    for i in range(coverage_runs):
        trees = {
            name: s.trees[i % len(s.trees)] for name, s in schedules.items()
        }
        run = executor.run(sources, trees=trees)
        payg += _executed_cost(analysis, run, trees)
        executions += 1
    for _ in range(HORIZON - executions):
        run = executor.run(sources, trees=best_trees)
        payg += _executed_cost(analysis, run, best_trees)

    # explore-exploit
    session = ExploreExploitSession(analysis)
    for _ in range(HORIZON):
        session.run(sources)
    explore = session.cumulative_cost()

    return [
        ("static", round(static)),
        ("pay-as-you-go", round(payg)),
        ("explore-exploit", round(explore)),
        ("ours", round(ours)),
    ], coverage_runs


def test_strategy_cumulative_costs(benchmark, results_dir):
    rows, coverage_runs = benchmark.pedantic(
        _strategy_costs, rounds=1, iterations=1
    )
    write_report(
        results_dir,
        "ablation_strategies",
        f"Cumulative executed cost over {HORIZON} runs of wf{WORKFLOW} "
        f"(pay-as-you-go needs {coverage_runs} coverage runs)",
        ["strategy", "total cost"],
        [list(r) for r in rows],
    )
    costs = dict(rows)
    # ours never loses: one instrumented run of the stale plan, the optimum
    # for all remaining runs
    assert costs["ours"] <= costs["static"]
    assert costs["ours"] <= costs["pay-as-you-go"]
    assert costs["ours"] <= costs["explore-exploit"]
    # every learning strategy eventually beats the stale static plan
    assert costs["pay-as-you-go"] < costs["static"]
    assert costs["explore-exploit"] < costs["static"]