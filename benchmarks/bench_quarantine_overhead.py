"""Ablation: what the quality gate costs when every row is clean.

The gate screens sources at the :class:`BackendExecutor` choke point on
every run, so on a healthy extract its price is one schema comparison
plus one whole-column predicate pass per contracted column -- and the
zero-copy clean path in :func:`validate_rows` hands the original tables
straight through.  A dead-letter layer that taxed every clean night to
catch the rare dirty one would be mis-priced, exactly like the fault
harness next door.

This bench runs one full optimizer night (statistic selection, the
instrumented execution with every tap armed, reporting) on wf21 -- the
suite's largest single-block workload, an 8-way join -- bare and with a
full inferred :class:`ContractSet` armed (type, nullability, and domain
checks on every column of every source, zero violations to find), on
every backend.

The enforced budget is the *additive* cost of the gate: screening the
clean extract is timed directly and must stay within 5% of the bare
pipeline wall.  The armed end-to-end wall is reported alongside for the
table, but bare-vs-armed wall deltas on a shared CI box swing by more
than the gate itself costs, so the assertion pins the deterministic
number, not the noise.
"""

import gc
import json
import time

from conftest import DATA_SCALE, single_process_backends, write_report

from repro.framework.pipeline import StatisticsPipeline
from repro.quality import ContractSet, QualityGate
from repro.workloads import case

WORKFLOW = 21  # largest single-block workload: 8-way join
REPEATS = 5
MAX_OVERHEAD = 0.05  # the armed-but-idle gate may cost at most 5%


def _timed(fn):
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()  # collection pauses otherwise dominate run-to-run noise
    try:
        for _ in range(REPEATS):
            gc.collect()
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return best


def _measure():
    wfcase = case(WORKFLOW)
    sources = wfcase.tables(scale=max(DATA_SCALE * 10, 3.0), seed=7)
    n_rows = sum(t.num_rows for t in sources.values())
    contracts = ContractSet.infer(sources)

    def screen():
        gate = QualityGate(contracts=contracts)
        screened = gate.screen_sources(sources)
        assert gate.quarantine.total_rows == 0  # the extract is clean
        assert all(screened[name] is sources[name] for name in sources)

    gate_wall = _timed(screen)

    rows, records = [], []
    for backend in single_process_backends():
        pipeline = StatisticsPipeline(
            wfcase.build(), backend=backend, solver="greedy"
        )
        bare = _timed(lambda: pipeline.run_once(sources))
        armed = _timed(
            lambda: pipeline.run_once(sources, contracts=contracts)
        )
        gate_share = gate_wall / bare
        for config, wall, note in (
            ("bare", bare, "+0.0%"),
            ("contracts", armed, f"{(armed / bare - 1.0) * 100:+.1f}%"),
            ("gate only", gate_wall, f"{gate_share * 100:+.1f}%"),
        ):
            rows.append(
                [f"wf{WORKFLOW}", backend, config,
                 round(wall * 1e3, 1), note]
            )
        records.append(
            {
                "workflow": WORKFLOW,
                "source_rows": n_rows,
                "backend": backend,
                "bare_wall_s": bare,
                "armed_wall_s": armed,
                "gate_wall_s": gate_wall,
                "gate_share_of_bare": gate_share,
            }
        )
    return rows, records


def test_quarantine_gate_overhead(benchmark, results_dir):
    rows, records = benchmark.pedantic(_measure, rounds=1, iterations=1)
    write_report(
        results_dir,
        "quarantine_overhead",
        f"Quality-gate overhead on a fully clean run (wf{WORKFLOW})",
        ["workload", "backend", "config", "best wall ms", "vs bare"],
        rows,
    )
    (results_dir / "quarantine_overhead.json").write_text(
        json.dumps(records, indent=2) + "\n"
    )

    # the gate's screening pass must stay within MAX_OVERHEAD of the bare
    # pipeline wall on every backend (min-of-REPEATS walls filter noise)
    for record in records:
        assert record["gate_share_of_bare"] <= MAX_OVERHEAD, record
