"""Scaling bench: multiprocess sharded execution vs the in-process engines.

The multiprocess backend exists to buy wall-clock throughput that the GIL
denies the thread-pool scheduler: each block's spine is cut into row
shards executed by forked worker processes over shared-memory inputs, and
the per-shard tap observations merge back exactly.  This bench measures
what that buys on the repo's actual workload -- an *instrumented*
observation night: every run executes wf21 (the suite's largest
single-block workload, an 8-way join) with taps armed for the
greedy-selected statistics, exactly what a nightly session runs.

All engines run interpreted (``compile_plans=False``): sharding is an
engine-vs-itself claim, and compilation is an orthogonal axis with its
own bench (``bench_plan_compile``) -- the same scoping
``bench_backend_throughput`` uses for its vectorized floor.  Measured per
configuration:

- rows/second for each single-process backend (columnar, streaming,
  vectorized) at one data scale;
- rows/second for the multiprocess backend at 1, 2 and 4 shards over a
  *warm* pool (the steady-state of a nightly session; the first run pays
  the fork + ping, later runs reuse the pool and the workers' plan
  caches).

Shape to reproduce: near-linear shard scaling up to what the hardware
delivers, and a >= 2x speedup over the serial columnar reference at 4
shards on a box with >= ~3 cores' worth of real cycles.  ``os.cpu_count``
is a poor proxy for that (SMT siblings and cgroup quotas both inflate
it), so the bench *calibrates*: it times the same pure-Python spin work
serially and across 4 forked workers, and binds the 2x acceptance floor
only where the measured parallelism supports it -- degrading below that
to demanding proportional recovery of whatever parallelism exists (so a
1-core container still catches a catastrophic overhead regression).

Alongside the markdown artifact this bench emits
``results/dist_throughput.json`` for downstream tooling.
"""

import gc
import json
import time
from concurrent.futures import ProcessPoolExecutor

from conftest import DATA_SCALE, single_process_backends, write_report

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.engine.backend import BackendExecutor, get_backend
from repro.engine.dist import MultiprocessBackend
from repro.workloads import case

WORKFLOW = 21  # largest single-block workload: 8-way join
SHARD_COUNTS = (1, 2, 4)
SCALE = max(DATA_SCALE * 100, 30.0)
REPEATS = 3

#: the acceptance floor at 4 shards, binding where the hardware delivers
FLOOR = 2.0

#: fraction of the *measured* spin parallelism sharding must recover
#: (the rest is the shard-and-merge tax: slice copies, result shipping,
#: observation merge -- plus run-to-run noise on shared boxes)
RECOVERY = 0.6


def _spin(n):
    total = 0
    for i in range(n):
        total += i * i
    return total


def _measured_parallelism(work=2_000_000, workers=4):
    """Speedup 4 forked workers achieve on pure-Python spin work.

    This is what the box can actually hand the shard pool -- SMT
    siblings typically deliver ~1.2x per physical core, not 2x, and
    cgroup CPU quotas can cap well below ``os.cpu_count()``.
    """
    jobs = [work] * workers
    t0 = time.perf_counter()
    for n in jobs:
        _spin(n)
    serial = time.perf_counter() - t0
    with ProcessPoolExecutor(max_workers=workers) as pool:
        list(pool.map(_spin, [1] * workers))  # pay the fork outside timing
        t0 = time.perf_counter()
        list(pool.map(_spin, jobs))
        parallel = time.perf_counter() - t0
    return max(serial / parallel, 1.0)


def _best_wall(run, repeats=REPEATS):
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            t0 = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return best


def _measure():
    wfcase = case(WORKFLOW)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    # the greedy-selected statistics of the paper pipeline: every timed
    # run observes these inline, like a real observation night
    selection = solve_greedy(
        build_problem(generate_css(analysis), CostModel(workflow.catalog))
    )
    stats = selection.observed
    sources = wfcase.tables(scale=SCALE, seed=7)
    n_rows = sum(t.num_rows for t in sources.values())

    rows, records = [], []

    def add(label, shards, wall, baseline):
        rows.append(
            [
                f"wf{WORKFLOW}@{SCALE:g}",
                n_rows,
                label,
                shards if shards else "-",
                round(wall * 1e3, 1),
                round(n_rows / wall),
                round(baseline / wall, 2) if baseline else 1.0,
            ]
        )
        records.append(
            {
                "workflow": WORKFLOW,
                "scale": SCALE,
                "source_rows": n_rows,
                "backend": label,
                "shards": shards,
                "wall_s": wall,
                "rows_per_s": n_rows / wall,
                "speedup_vs_columnar": (baseline / wall) if baseline else 1.0,
            }
        )

    baseline = None
    for name in single_process_backends():
        backend = get_backend(name)
        executor = BackendExecutor(analysis, backend, compile_plans=False)
        # the per-tuple streaming engine is ~10x slower interpreted and
        # only provides context here, not the baseline: measure it once
        wall = _best_wall(
            lambda: executor.run(sources, taps=backend.make_taps(stats)),
            repeats=1 if name == "streaming" else REPEATS,
        )
        if name == "columnar":
            baseline = wall
        add(name, None, wall, baseline if name != "columnar" else None)

    for shards in SHARD_COUNTS:
        backend = MultiprocessBackend(shards=shards, inline=False)
        try:
            executor = BackendExecutor(analysis, backend, compile_plans=False)
            # pay the fork + pool ping once, outside the timed repeats
            executor.run(sources, taps=backend.make_taps(stats))
            wall = _best_wall(
                lambda: executor.run(sources, taps=backend.make_taps(stats))
            )
        finally:
            backend.close()
        add("multiprocess", shards, wall, baseline)

    return rows, records, _measured_parallelism()


def test_dist_throughput(benchmark, results_dir):
    rows, records, parallelism = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    write_report(
        results_dir,
        "dist_throughput",
        f"Sharded multiprocess throughput (wf{WORKFLOW}, instrumented "
        "interpreted runs, warm pool; measured 4-way parallelism "
        f"{parallelism:.2f}x)",
        ["workload", "source rows", "backend", "shards", "best wall ms",
         "rows/s", "x columnar"],
        rows,
    )
    (results_dir / "dist_throughput.json").write_text(
        json.dumps(
            {
                "dist_throughput": records,
                "measured_parallelism": parallelism,
            },
            indent=2,
        )
        + "\n"
    )

    by_shards = {
        r["shards"]: r for r in records if r["backend"] == "multiprocess"
    }
    # sharding must never *lose* to its own single-shard configuration by
    # more than dispatch noise, even on a small box
    assert by_shards[2]["wall_s"] <= by_shards[1]["wall_s"] * 1.5
    # the acceptance floor: >= 2x the serial columnar reference at 4
    # shards wherever the measured parallelism supports it; below that,
    # demand proportional recovery (a 1-core box must still stay within
    # the shard-and-merge tax of the serial reference)
    expected = min(FLOOR, RECOVERY * parallelism)
    assert by_shards[4]["speedup_vs_columnar"] >= expected, (
        by_shards[4],
        parallelism,
    )
