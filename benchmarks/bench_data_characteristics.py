"""Section 7 data-characteristics table.

Paper reports (over the relations backing its 30 workflows)::

    Stat     Card     UV
    Max      417874   417874
    Min      3342     102
    Mean     104466   65768
    Median   52234    6529

We regenerate the same four summary rows from our Zipfian population and
check the shape: strong right skew (mean >> median), UV bounded by Card,
ranges inside the paper's envelope.
"""

from conftest import write_report

from repro.experiments import data_characteristics_rows


def test_data_characteristics(benchmark, results_dir):
    header, rows = benchmark(data_characteristics_rows)
    write_report(
        results_dir,
        "data_characteristics",
        "Data characteristics (Section 7 table)",
        header,
        rows,
    )
    by_stat = {r[0]: r for r in rows}
    # shape assertions mirroring the paper's skew
    assert float(by_stat["Mean"][1]) > float(by_stat["Median"][1])
    assert float(by_stat["Mean"][3]) > float(by_stat["Median"][3])
    assert float(by_stat["Min"][1]) >= 3342
    assert float(by_stat["Max"][1]) <= 417874
    assert float(by_stat["Min"][3]) >= 102
