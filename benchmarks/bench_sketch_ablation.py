"""Sketch ablation: distinct-tap accuracy vs memory across precisions.

Extends the Figure 11 memory story to the *observation* side: the exact
``DistinctAccumulator`` holds every distinct value tuple it has seen, so
a distinct tap's working set grows with the data; an HLL sketch caps it
at ``2^p`` one-byte registers.  Per precision this bench taps every base
feed of all 30 suite workflows with per-attribute distinct statistics
through the one accumulator factory, then reports total accumulator
bytes against the exact baseline and the estimate error it buys.

Artifacts: ``results/sketch_ablation.md`` (the table) and
``results/sketch_ablation.json`` (the raw series for downstream tooling).

Gate (the PR's acceptance criterion): some precision on the curve must
cut tap memory by >= 4x while keeping every estimate within 5% relative
error (small taps stay in the exact-set fallback on both sides, so the
reduction comes entirely from the large feeds that matter).
"""

from __future__ import annotations

import json

from conftest import DATA_SCALE, write_report

from repro.algebra.expressions import SubExpression
from repro.core.statistics import Statistic
from repro.engine.instrumentation import TapSet
from repro.estimation.sketches import DEFAULT_PRECISION, sketch_scope

PRECISIONS = [8, 10, 12, 14, 16]
SEED = 11


def _tap_suite(workflow_cases, spec=None):
    """Observe every base feed's per-attribute distincts; returns
    ``(estimates, total_bytes)`` keyed by (workflow, source, attr)."""
    estimates: dict[tuple, int] = {}
    total_bytes = 0
    for case in workflow_cases:
        sources = case.tables(scale=DATA_SCALE, seed=SEED)
        for name, table in sorted(sources.items()):
            se = SubExpression.of(name)
            stats = [
                Statistic.distinct(se, attr) for attr in sorted(table.attrs)
            ]
            if spec is None:
                taps = TapSet(stats, mergeable=True)
                taps.observe(se, table)
            else:
                with sketch_scope(spec):
                    taps = TapSet(stats, mergeable=True)
                    taps.observe(se, table)
            total_bytes += taps.distinct_bytes()
            for stat in stats:
                estimates[(case.number, name, stat.attrs[0])] = (
                    taps.store.get(stat)
                )
    return estimates, total_bytes


def sketch_ablation_rows(workflow_cases):
    exact, exact_bytes = _tap_suite(workflow_cases)
    rows = []
    for precision in PRECISIONS:
        estimates, hll_bytes = _tap_suite(
            workflow_cases, {"mode": "hll", "precision": precision}
        )
        errors = [
            abs(estimates[key] - truth) / max(truth, 1)
            for key, truth in exact.items()
        ]
        rows.append(
            {
                "precision": precision,
                "registers": 1 << precision,
                "bytes": hll_bytes,
                "reduction": exact_bytes / max(hll_bytes, 1),
                "mean_rel_error": sum(errors) / len(errors),
                "max_rel_error": max(errors),
            }
        )
    return exact_bytes, len(exact), rows


def test_sketch_ablation(benchmark, workflow_cases, results_dir):
    exact_bytes, taps, rows = benchmark.pedantic(
        sketch_ablation_rows, args=(workflow_cases,), rounds=1, iterations=1
    )

    header = [
        "precision", "registers", "tap bytes", "reduction vs exact",
        "mean rel err", "max rel err",
    ]
    table = [
        [
            r["precision"],
            r["registers"],
            f"{r['bytes']:,}",
            f"{r['reduction']:.1f}x",
            f"{r['mean_rel_error'] * 100:.2f}%",
            f"{r['max_rel_error'] * 100:.2f}%",
        ]
        for r in rows
    ]
    table.append(["exact", "-", f"{exact_bytes:,}", "1.0x", "0.00%", "0.00%"])
    write_report(
        results_dir,
        "sketch_ablation",
        f"Sketch ablation: distinct-tap accuracy vs memory "
        f"({taps} taps across the 30-workflow suite, scale {DATA_SCALE})",
        header,
        table,
    )
    (results_dir / "sketch_ablation.json").write_text(
        json.dumps(
            {
                "scale": DATA_SCALE,
                "taps": taps,
                "exact_bytes": exact_bytes,
                "default_precision": DEFAULT_PRECISION,
                "series": rows,
            },
            indent=2,
        )
        + "\n"
    )

    # memory grows monotonically with precision...
    assert all(
        a["bytes"] <= b["bytes"] for a, b in zip(rows, rows[1:])
    )
    # ...and the acceptance gate holds: some precision on the curve cuts
    # tap memory >= 4x while keeping every estimate within 5% (p=12 at
    # this scale; the default p=14 trades more memory for <2% worst-case)
    frontier = [
        r for r in rows
        if r["reduction"] >= 4.0 and r["max_rel_error"] <= 0.05
    ]
    assert frontier, rows
