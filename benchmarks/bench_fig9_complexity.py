"""Figure 9: complexity of the workflows.

For each of the 30 workflows, the number of SEs and the number of CSSs
formed without and with the union-division method.  Shape to reproduce:
both counts grow with workflow complexity, union-division adds CSSs (it
only ever introduces alternatives), and the 8-way-join workflow (21)
dominates.
"""

from conftest import write_report

from repro.experiments import SuiteContext, fig9_rows


def test_fig9_complexity(benchmark, workflow_analyses, results_dir):
    context = SuiteContext(
        [c for c, _w, _a in workflow_analyses],
        [w for _c, w, _a in workflow_analyses],
        [a for _c, _w, a in workflow_analyses],
    )
    header, rows = benchmark.pedantic(
        fig9_rows, args=(context,), rounds=1, iterations=1
    )
    write_report(
        results_dir,
        "fig9_complexity",
        "Figure 9: workflow complexity (#SE, #CSS without/with union-division)",
        header,
        rows,
    )
    by_wf = {r[0]: r for r in rows}
    # union-division only ever adds CSSs
    assert all(r[3] >= r[2] for r in rows)
    # ... and does add some on the join-heavy workflows
    assert sum(1 for r in rows if r[3] > r[2]) >= 10
    # the 8-way join dominates both counts
    assert by_wf[21][1] == max(r[1] for r in rows)
    assert by_wf[21][3] == max(r[3] for r in rows)
    # simple linear flows sit at the bottom of the range
    assert by_wf[2][1] == min(r[1] for r in rows)
