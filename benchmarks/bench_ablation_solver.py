"""Ablation: exact ILP (Section 5.2) vs greedy heuristic (Section 5.3).

"The LP formulation could take a long time to solve since S can be quite
large.  In such a case, greedy heuristics could be used to arrive at a good
solution."  We measure both on every suite workflow: solution cost ratio
and wall time.
"""

import time

from conftest import ILP_TIME_LIMIT, write_report

from repro.core.costs import CostModel
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.greedy import solve_greedy
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.estimation.bootstrap import bootstrap_se_sizes


SAMPLE = {1, 5, 9, 11, 13, 14, 16, 19, 20, 21, 26, 27, 28, 29, 30}


def _solver_sweep(analyses):
    rows = []
    for case, workflow, analysis in analyses:
        if case.number not in SAMPLE:
            continue
        cards, dv = case.characteristics(scale=1.0)
        cost_model = CostModel(
            workflow.catalog, se_sizes=bootstrap_se_sizes(analysis, cards, dv)
        )
        catalog = generate_css(analysis, GeneratorOptions(fk_rules=False))
        problem = build_problem(catalog, cost_model)

        t0 = time.perf_counter()
        exact = solve_ilp(problem, time_limit=ILP_TIME_LIMIT)
        t_ilp = time.perf_counter() - t0
        t0 = time.perf_counter()
        greedy = solve_greedy(problem)
        t_greedy = time.perf_counter() - t0
        ratio = (
            greedy.total_cost / exact.total_cost if exact.total_cost else 1.0
        )
        rows.append(
            (
                case.number,
                f"{exact.total_cost:.0f}",
                f"{greedy.total_cost:.0f}",
                round(ratio, 2),
                round(t_ilp * 1e3, 1),
                round(t_greedy * 1e3, 1),
            )
        )
    return rows


def test_solver_ablation(benchmark, workflow_analyses, results_dir):
    rows = benchmark.pedantic(
        _solver_sweep, args=(workflow_analyses,), rounds=1, iterations=1
    )
    write_report(
        results_dir,
        "ablation_solver",
        "Ablation: ILP vs greedy (cost and wall time, ms)",
        ["wf", "ILP cost", "greedy cost", "greedy/ILP", "ILP ms", "greedy ms"],
        [list(r) for r in rows],
    )
    ratios = [r[3] for r in rows]
    # the greedy is a valid heuristic: never below the (proven or incumbent)
    # ILP cost by more than rounding, exact on the simple workflows, and
    # within a single-digit factor on the hard ones (Section 5.3's framing)
    assert all(r >= 0.99 for r in ratios)
    assert sum(1 for r in ratios if r <= 1.01) >= 2
    assert max(ratios) < 10
    # and it is fast everywhere
    assert max(r[5] for r in rows) < 5000
