# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench examples experiments clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex || exit 1; done

experiments:
	$(PYTHON) -m repro.cli experiments data
	$(PYTHON) -m repro.cli experiments fig9
	$(PYTHON) -m repro.cli experiments fig12

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
